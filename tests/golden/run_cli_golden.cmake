# CTest driver for the meraligner_cli golden-file test.
#
# Inputs (passed with -D):
#   CLI     - path to the built meraligner_cli binary
#   GOLDEN  - checked-in expected SAM (tests/golden/meraligner_cli.sam)
#   WORKDIR - scratch directory for this run
#
# Scenarios:
#   1. single batch, one run per --sw kernel (full/banded/striped/batch): all
#      four must produce the SAME golden SAM — the banded, striped and batch
#      kernels are exact over their windows, so kernel choice must not change
#      output; --sw batch additionally runs once per pinned --sw-isa tier
#   2. multi batch:   --reads reads_a --reads reads_b (one index, two batches)
#                     -> the SAME record set, since per-read results depend
#                     only on the prebuilt index, not on batch boundaries
#   3. bad flags must fail fast with a usage message, not be ignored
#   4. sharded reference: --shards 3 must reproduce the single-index record
#      set exactly (run with --no-exact on both sides: the Lemma-1
#      single-copy shortcut is defined per index, so it is the one knob that
#      legitimately differs between one index and K shards)
#
# Fixtures are copied into WORKDIR first because the CLI writes a derived
# .sdb file next to the input FASTQ; the source tree must stay clean.
cmake_minimum_required(VERSION 3.20)

get_filename_component(FIXTURES ${GOLDEN} DIRECTORY)

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
file(COPY ${FIXTURES}/contigs.fa ${FIXTURES}/reads.fastq
     ${FIXTURES}/reads_a.fastq ${FIXTURES}/reads_b.fastq
     DESTINATION ${WORKDIR})

# SAM record order is not semantically meaningful (the pipeline emits per-rank
# batches, and index bucket order is thread-arrival order), so compare sorted
# line sets. The @PG CL field embeds absolute scratch paths, so it is
# canonicalized before comparing — its presence is asserted separately. Read
# names contain ';' (CMake's list separator), so shield them with a
# placeholder before any list operation — otherwise list(SORT) silently
# splits records into fragments.
function(normalize in_path out_path)
  file(READ ${in_path} content)
  string(REGEX REPLACE "\tCL:[^\n]*" "\tCL:<normalized>" content "${content}")
  string(REPLACE ";" "<SEMI>" content "${content}")
  string(REPLACE "\n" ";" lines "${content}")
  list(SORT lines)
  list(JOIN lines "\n" text)
  string(REPLACE "<SEMI>" ";" text "${text}")
  file(WRITE ${out_path} "${text}\n")
endfunction()

function(check_sam_against produced expected label)
  normalize(${produced} ${produced}.sorted)
  normalize(${expected} ${WORKDIR}/expected.sorted.sam)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${produced}.sorted ${WORKDIR}/expected.sorted.sam
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${label}: SAM output differs from ${expected}.\n"
      "  produced: ${produced}\n"
      "If the change is intentional, re-baseline by copying the produced file "
      "over the golden one and replacing the @PG CL:... field with "
      "CL:<normalized> — it embeds run-specific paths "
      "(see tests/golden/gen_fixtures.cpp).")
  endif()
endfunction()

function(check_sam produced label)
  check_sam_against(${produced} ${GOLDEN} "${label}")
endfunction()

# --- 1. single batch, all four SW kernel selectors ---------------------------
foreach(sw full banded striped batch)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --out ${WORKDIR}/out_${sw}.sam
      --k 31 --ranks 4 --ppn 2 --no-permute --sw ${sw}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "meraligner_cli --sw ${sw} exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  check_sam(${WORKDIR}/out_${sw}.sam "single-batch --sw ${sw}")
endforeach()

# The batch engine pinned to its scalar tier must still hit the golden bytes
# (the SIMD tiers are covered by the loop above via auto-dispatch; scalar is
# the one tier auto never picks on SIMD-capable CI hosts).
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_batch_scalar.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --sw batch --sw-isa scalar
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--sw batch --sw-isa scalar exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
check_sam(${WORKDIR}/out_batch_scalar.sam "single-batch --sw batch --sw-isa scalar")

# Cross-read pooling is on by default for --sw batch; disabling it and
# forcing an odd explicit flush threshold must both still hit the golden
# bytes — pooling changes flush timing, never output.
foreach(pool off 5)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --out ${WORKDIR}/out_batch_pool_${pool}.sam
      --k 31 --ranks 4 --ppn 2 --no-permute --sw batch --sw-pool ${pool}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--sw batch --sw-pool ${pool} exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  check_sam(${WORKDIR}/out_batch_pool_${pool}.sam
            "single-batch --sw batch --sw-pool ${pool}")
endforeach()

# --sw-pool validation: malformed thresholds are usage errors (exit 2 +
# usage), and the flag is rejected outside --sw batch runs.
foreach(bad 0 -4 lots)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --k 31 --ranks 4 --ppn 2 --sw batch --sw-pool ${bad}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "--sw-pool ${bad} exited ${rc}, expected usage error 2")
  endif()
  if(NOT err MATCHES "sw-pool" OR NOT err MATCHES "meraligner --targets")
    message(FATAL_ERROR "--sw-pool ${bad} did not print the usage message:\n${err}")
  endif()
endforeach()
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 31 --ranks 4 --ppn 2 --sw striped --sw-pool on
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "requires --sw batch")
  message(FATAL_ERROR "--sw-pool outside --sw batch was not rejected (rc=${rc}):\n${err}")
endif()

# --sw-isa help is a first-class query: print the tier table and exit 0,
# before any input validation.
execute_process(
  COMMAND ${CLI} --sw-isa help
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--sw-isa help exited ${rc}, expected 0:\n${err}")
endif()
if(NOT out MATCHES "scalar" OR NOT out MATCHES "sse2")
  message(FATAL_ERROR "--sw-isa help did not print the tier table:\n${out}")
endif()

# --sw-isa validation: unknown tier names are usage errors (exit 2 + usage),
# and the flag is rejected outside --sw batch runs.
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 31 --ranks 4 --ppn 2 --sw batch --sw-isa mmx
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--sw-isa mmx exited ${rc}, expected usage error 2")
endif()
if(NOT err MATCHES "sw-isa" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "--sw-isa mmx did not print the usage message:\n${err}")
endif()
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 31 --ranks 4 --ppn 2 --sw striped --sw-isa scalar
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "requires --sw batch")
  message(FATAL_ERROR "--sw-isa outside --sw batch was not rejected (rc=${rc}):\n${err}")
endif()

# The header must carry a spec-complete @PG line: program, version, and the
# command line of the invocation that produced the file.
file(READ ${WORKDIR}/out_full.sam full_sam)
if(NOT full_sam MATCHES "@PG\tID:merAligner\tPN:meraligner\tVN:[^\n\t]+\tCL:[^\n]*--targets")
  message(FATAL_ERROR "single-batch SAM lacks a @PG line with PN/VN/CL")
endif()

# --- 2. multi batch over one reused index -----------------------------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads_a.fastq
    --reads ${WORKDIR}/reads_b.fastq
    --out ${WORKDIR}/out_multi.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "multi-batch meraligner_cli exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "batch 2/2")
  message(FATAL_ERROR "multi-batch run did not report a second batch:\n${err}")
endif()
check_sam(${WORKDIR}/out_multi.sam "multi-batch")

# --- 3. bad flags fail fast --------------------------------------------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --bogus-flag 7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "meraligner_cli accepted an unknown flag (--bogus-flag)")
endif()
if(NOT err MATCHES "unknown flag" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "bad-flag run did not print the usage message:\n${err}")
endif()

# --- 4. sharded reference reproduces the single-index record set -------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_single_noexact.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "single-index --no-exact run exited with ${rc}\nstderr:\n${err}")
endif()
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_sharded.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact --shards 3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded meraligner_cli exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "sharded index built: 3 shards")
  message(FATAL_ERROR "sharded run did not report its shards:\n${err}")
endif()
check_sam_against(${WORKDIR}/out_sharded.sam ${WORKDIR}/out_single_noexact.sam
                  "sharded-vs-single")

# --- 5. --shard-parallel: explicit executor width, same bytes ----------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_sharded_j2.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact --shards 3
    --shard-parallel 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--shard-parallel 2 run exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "shard executor: 2 of 3 shards in parallel")
  message(FATAL_ERROR "--shard-parallel 2 did not report its executor width:\n${err}")
endif()
check_sam_against(${WORKDIR}/out_sharded_j2.sam ${WORKDIR}/out_single_noexact.sam
                  "shard-parallel-vs-single")

# --shard-parallel validation: 0, negative and non-numeric values are usage
# errors (exit 2 + usage), and the flag is rejected outside sharded runs.
foreach(bad 0 -3 abc)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --k 31 --ranks 4 --ppn 2 --shards 3 --shard-parallel ${bad}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "--shard-parallel ${bad} exited ${rc}, expected usage error 2")
  endif()
  if(NOT err MATCHES "shard-parallel" OR NOT err MATCHES "meraligner --targets")
    message(FATAL_ERROR "--shard-parallel ${bad} did not print the usage message:\n${err}")
  endif()
endforeach()
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 31 --ranks 4 --ppn 2 --shard-parallel 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "requires a sharded reference")
  message(FATAL_ERROR "--shard-parallel without shards was not rejected (rc=${rc}):\n${err}")
endif()

# --- 6. --no-prefetch matches the default double-buffered stream -------------
# (the scenario-2 multi-batch run above already went through the prefetcher;
# the strictly serial loop must produce the same golden bytes)
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads_a.fastq
    --reads ${WORKDIR}/reads_b.fastq
    --out ${WORKDIR}/out_multi_noprefetch.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-prefetch
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--no-prefetch multi-batch run exited with ${rc}\nstderr:\n${err}")
endif()
check_sam(${WORKDIR}/out_multi_noprefetch.sam "multi-batch --no-prefetch")

# --- 7. cache persistence: save in one process, warm-load in another ---------
# The cold run snapshots its caches; a second process warm-starts from them.
# Persistence must change seconds, never bytes: both runs produce the same
# SAM (and the same golden SAM, since this is the scenario-1 configuration).
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_cachecold.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
    --save-cache ${WORKDIR}/cache_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--save-cache run exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "caches saved to")
  message(FATAL_ERROR "--save-cache run did not report the snapshot:\n${err}")
endif()
if(NOT EXISTS ${WORKDIR}/cache_snapshot/session.mcache)
  message(FATAL_ERROR "--save-cache did not write cache_snapshot/session.mcache")
endif()

execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_cachewarm.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
    --load-cache ${WORKDIR}/cache_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--load-cache run exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "warm caches loaded from")
  message(FATAL_ERROR "--load-cache run did not report the warm start:\n${err}")
endif()
check_sam_against(${WORKDIR}/out_cachewarm.sam ${WORKDIR}/out_cachecold.sam
                  "warm-vs-cold")
check_sam(${WORKDIR}/out_cachewarm.sam "warm-started single batch")

# Sharded equivalent: one snapshot per shard, same bytes warm as cold.
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_shardcachecold.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact --shards 3
    --save-cache ${WORKDIR}/shard_cache_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded --save-cache run exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT EXISTS ${WORKDIR}/shard_cache_snapshot/shard-0002.mcache)
  message(FATAL_ERROR "sharded --save-cache did not write one snapshot per shard")
endif()
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_shardcachewarm.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact --shards 3
    --load-cache ${WORKDIR}/shard_cache_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded --load-cache run exited with ${rc}\nstderr:\n${err}")
endif()
check_sam_against(${WORKDIR}/out_shardcachewarm.sam
                  ${WORKDIR}/out_shardcachecold.sam "sharded warm-vs-cold")

# Bad cache flags are usage errors (exit 2 + usage), not silent cold starts:
# a missing snapshot directory, a snapshot recorded against a different index
# (other k), and --save-cache without --reads.
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 31 --ranks 4 --ppn 2 --load-cache ${WORKDIR}/no_such_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--load-cache on a missing dir exited ${rc}, expected 2")
endif()
if(NOT err MATCHES "load-cache" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "missing-dir --load-cache did not print the usage message:\n${err}")
endif()

execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --k 21 --ranks 4 --ppn 2 --load-cache ${WORKDIR}/cache_snapshot
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--load-cache with mismatched k exited ${rc}, expected 2")
endif()
if(NOT err MATCHES "mismatch" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "mismatched --load-cache did not print the usage message:\n${err}")
endif()

execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --save-cache ${WORKDIR}/cache_noreads
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--save-cache without --reads exited ${rc}, expected 2")
endif()
if(NOT err MATCHES "missing required flag --reads" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "--save-cache without --reads did not print the usage message:\n${err}")
endif()

# --- 8. observability: --trace/--metrics change seconds, never bytes ---------
# An observed sharded run (trace + metrics + cache totals) must hit the same
# record set as scenario 4's unobserved runs, and both sidecar files must
# materialize.
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_observed.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --no-exact --shards 3
    --shard-parallel 2 --stats
    --trace ${WORKDIR}/trace.json
    --metrics ${WORKDIR}/metrics.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "observed run exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "trace written to" OR NOT err MATCHES "metrics written to")
  message(FATAL_ERROR "observed run did not report its sidecar files:\n${err}")
endif()
if(NOT err MATCHES "cache totals")
  message(FATAL_ERROR "--stats did not print the end-of-run cache totals:\n${err}")
endif()
check_sam_against(${WORKDIR}/out_observed.sam ${WORKDIR}/out_single_noexact.sam
                  "observed-vs-unobserved")
if(NOT EXISTS ${WORKDIR}/trace.json OR NOT EXISTS ${WORKDIR}/metrics.json)
  message(FATAL_ERROR "observed run did not write trace.json / metrics.json")
endif()
file(READ ${WORKDIR}/trace.json trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"" OR NOT trace_json MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR "trace.json is not Chrome Trace Event JSON:\n${trace_json}")
endif()
file(READ ${WORKDIR}/metrics.json metrics_json)
if(NOT metrics_json MATCHES "mera_shard_wall_seconds")
  message(FATAL_ERROR "metrics.json lacks the per-shard wall series:\n${metrics_json}")
endif()

# Prometheus export: --metrics-format prom writes text exposition format.
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_observed_prom.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
    --metrics ${WORKDIR}/metrics.prom --metrics-format prom
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--metrics-format prom run exited with ${rc}\nstderr:\n${err}")
endif()
file(READ ${WORKDIR}/metrics.prom metrics_prom)
if(NOT metrics_prom MATCHES "# TYPE mera_reads_processed_total counter")
  message(FATAL_ERROR "metrics.prom is not Prometheus text exposition:\n${metrics_prom}")
endif()
check_sam(${WORKDIR}/out_observed_prom.sam "single batch with --metrics")

# Unwritable sidecar targets are runtime failures (exit 1) that NAME the
# file, not silent successes: an unflushed/failed ofstream used to vanish
# into the exit path. A path under a regular file fails on open; /dev/full
# (where present) fails at flush — the later, sneakier variant.
file(WRITE ${WORKDIR}/not_a_dir "just a file\n")
foreach(flag trace metrics)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --out ${WORKDIR}/out_badsidecar_${flag}.sam
      --k 31 --ranks 4 --ppn 2 --no-permute
      --${flag} ${WORKDIR}/not_a_dir/${flag}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "--${flag} to an unwritable path exited ${rc}, expected 1:\n${err}")
  endif()
  if(NOT err MATCHES "not_a_dir/${flag}.json")
    message(FATAL_ERROR
      "--${flag} failure did not name the unwritable file:\n${err}")
  endif()
endforeach()
if(EXISTS /dev/full)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --out ${WORKDIR}/out_devfull.sam
      --k 31 --ranks 4 --ppn 2 --no-permute
      --metrics /dev/full
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "--metrics /dev/full exited ${rc}, expected 1 (flush must be checked):\n${err}")
  endif()
  if(NOT err MATCHES "/dev/full")
    message(FATAL_ERROR "--metrics /dev/full failure did not name the file:\n${err}")
  endif()
endif()

# --quiet: same golden bytes, no informational stderr (errors still print).
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out_quiet.sam
    --k 31 --ranks 4 --ppn 2 --no-permute --quiet
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--quiet run exited with ${rc}\nstderr:\n${err}")
endif()
if(err MATCHES "\\[meraligner\\]")
  message(FATAL_ERROR "--quiet did not silence the informational lines:\n${err}")
endif()
check_sam(${WORKDIR}/out_quiet.sam "single batch --quiet")

# Observability flag validation: all usage errors (exit 2 + usage), even
# under --quiet — usage errors always print. `extra` is a ;-list of flags
# appended to an otherwise valid invocation; `expect` the message fragment.
function(check_obs_usage_error extra expect)
  execute_process(
    COMMAND ${CLI}
      --targets ${WORKDIR}/contigs.fa
      --reads ${WORKDIR}/reads.fastq
      --k 31 --ranks 4 --ppn 2 --quiet ${extra}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "'${extra}' exited ${rc}, expected usage error 2")
  endif()
  if(NOT err MATCHES "${expect}" OR NOT err MATCHES "meraligner --targets")
    message(FATAL_ERROR "'${extra}' did not print the usage message:\n${err}")
  endif()
endfunction()
check_obs_usage_error("--trace" "--trace expects a file path")
check_obs_usage_error("--metrics" "--metrics expects a file path")
check_obs_usage_error("--metrics-format;json" "--metrics-format requires --metrics")
check_obs_usage_error("--metrics;${WORKDIR}/m.json;--metrics-format;xml"
                      "--metrics-format expects json|prom")
