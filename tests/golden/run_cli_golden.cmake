# CTest driver for the meraligner_cli golden-file test.
#
# Inputs (passed with -D):
#   CLI     - path to the built meraligner_cli binary
#   GOLDEN  - checked-in expected SAM (tests/golden/meraligner_cli.sam)
#   WORKDIR - scratch directory for this run
#
# Three scenarios share one golden file:
#   1. single batch:  --reads reads.fastq            -> golden SAM
#   2. multi batch:   --reads reads_a --reads reads_b (one index, two batches)
#                     -> the SAME record set, since per-read results depend
#                     only on the prebuilt index, not on batch boundaries
#   3. bad flags must fail fast with a usage message, not be ignored
#
# Fixtures are copied into WORKDIR first because the CLI writes a derived
# .sdb file next to the input FASTQ; the source tree must stay clean.
cmake_minimum_required(VERSION 3.20)

get_filename_component(FIXTURES ${GOLDEN} DIRECTORY)

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
file(COPY ${FIXTURES}/contigs.fa ${FIXTURES}/reads.fastq
     ${FIXTURES}/reads_a.fastq ${FIXTURES}/reads_b.fastq
     DESTINATION ${WORKDIR})

# SAM record order is not semantically meaningful (the pipeline emits per-rank
# batches), so compare sorted line sets. Read names contain ';' (CMake's list
# separator), so shield them with a placeholder before any list operation —
# otherwise list(SORT) silently splits records into fragments.
function(normalize in_path out_path)
  file(READ ${in_path} content)
  string(REPLACE ";" "<SEMI>" content "${content}")
  string(REPLACE "\n" ";" lines "${content}")
  list(SORT lines)
  list(JOIN lines "\n" text)
  string(REPLACE "<SEMI>" ";" text "${text}")
  file(WRITE ${out_path} "${text}\n")
endfunction()

function(check_sam produced label)
  normalize(${produced} ${produced}.sorted)
  normalize(${GOLDEN} ${WORKDIR}/golden.sorted.sam)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${produced}.sorted ${WORKDIR}/golden.sorted.sam
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${label}: SAM output differs from golden file.\n"
      "  produced: ${produced}\n"
      "  expected: ${GOLDEN}\n"
      "If the change is intentional, re-baseline by copying the produced file "
      "over the golden one (see tests/golden/gen_fixtures.cpp).")
  endif()
endfunction()

# --- 1. single batch --------------------------------------------------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "meraligner_cli exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
check_sam(${WORKDIR}/out.sam "single-batch")

# --- 2. multi batch over one reused index -----------------------------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads_a.fastq
    --reads ${WORKDIR}/reads_b.fastq
    --out ${WORKDIR}/out_multi.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "multi-batch meraligner_cli exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "batch 2/2")
  message(FATAL_ERROR "multi-batch run did not report a second batch:\n${err}")
endif()
check_sam(${WORKDIR}/out_multi.sam "multi-batch")

# --- 3. bad flags fail fast --------------------------------------------------
execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --bogus-flag 7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "meraligner_cli accepted an unknown flag (--bogus-flag)")
endif()
if(NOT err MATCHES "unknown flag" OR NOT err MATCHES "meraligner --targets")
  message(FATAL_ERROR "bad-flag run did not print the usage message:\n${err}")
endif()
