// Regenerates the checked-in golden-test fixtures (contigs.fa, reads.fastq)
// with fixed RNG seeds. Run from the repo root after changing the simulators:
//
//   cmake --build build --target gen_cli_golden_fixtures
//   ./build/tests/gen_cli_golden_fixtures tests/golden
//
// then re-baseline tests/golden/meraligner_cli.sam from the CLI output (see
// run_cli_golden.cmake for the exact invocation and normalization).
#include <cstdio>
#include <string>

#include "seq/fasta.hpp"
#include "seq/fastq.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace mera::seq;
  const std::string dir = argc > 1 ? argv[1] : ".";

  GenomeParams gp;
  gp.length = 20'000;
  gp.repeat_fraction = 0.05;
  gp.rng_seed = 1;
  const std::string genome = simulate_genome(gp);

  ContigParams cp;
  cp.rng_seed = 2;
  write_fasta(dir + "/contigs.fa", chop_into_contigs(genome, cp));

  ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 2.0;
  rp.error_rate = 0.005;
  rp.junk_fraction = 0.02;
  rp.rng_seed = 42;
  const auto reads = simulate_reads(genome, rp);
  write_fastq(dir + "/reads.fastq", reads);

  // Two-batch fixtures for the multi-batch CLI path: the same read set split
  // in half. Aligning both halves against one index must reproduce exactly
  // the single-batch record set, so the same golden SAM covers both paths.
  const auto mid = reads.begin() + static_cast<std::ptrdiff_t>(reads.size() / 2);
  write_fastq(dir + "/reads_a.fastq", {reads.begin(), mid});
  write_fastq(dir + "/reads_b.fastq", {mid, reads.end()});

  std::printf(
      "wrote %s/{contigs.fa, reads.fastq, reads_a.fastq, reads_b.fastq} "
      "(%zu reads)\n",
      dir.c_str(), reads.size());
  return 0;
}
