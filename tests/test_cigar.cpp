#include "align/cigar.hpp"

#include <gtest/gtest.h>

namespace {

using namespace mera::align;

TEST(Cigar, PushMergesAdjacentSameOps) {
  Cigar c;
  c.push(CigarOp::kMatch, 5);
  c.push(CigarOp::kMatch, 3);
  c.push(CigarOp::kInsert, 1);
  c.push(CigarOp::kMatch, 2);
  ASSERT_EQ(c.elems().size(), 3u);
  EXPECT_EQ(c.to_string(), "8M1I2M");
}

TEST(Cigar, ZeroLengthPushIsIgnored) {
  Cigar c;
  c.push(CigarOp::kSoftClip, 0);
  c.push(CigarOp::kMatch, 4);
  c.push(CigarOp::kDelete, 0);
  EXPECT_EQ(c.to_string(), "4M");
}

TEST(Cigar, EmptyPrintsAsStar) {
  EXPECT_EQ(Cigar{}.to_string(), "*");
}

TEST(Cigar, SpansCountTheRightOps) {
  Cigar c;
  c.push(CigarOp::kSoftClip, 3);
  c.push(CigarOp::kMatch, 10);
  c.push(CigarOp::kInsert, 2);
  c.push(CigarOp::kDelete, 4);
  c.push(CigarOp::kMatch, 5);
  c.push(CigarOp::kSoftClip, 1);
  // Query: S + M + I + M + S = 3+10+2+5+1
  EXPECT_EQ(c.query_span(), 21u);
  // Target: M + D + M = 10+4+5
  EXPECT_EQ(c.target_span(), 19u);
}

TEST(Cigar, ParseRoundTrip) {
  for (const char* s : {"4M", "3S10M2I4D5M1S", "100M", "*"}) {
    EXPECT_EQ(Cigar::parse(s).to_string(), s);
  }
}

TEST(Cigar, ParseRejectsGarbage) {
  EXPECT_THROW(Cigar::parse("4Q"), std::invalid_argument);
  EXPECT_THROW(Cigar::parse("12"), std::invalid_argument);
}

TEST(Cigar, ParseMergesRedundantRuns) {
  EXPECT_EQ(Cigar::parse("2M3M").to_string(), "5M");
}

TEST(Cigar, ReverseFlipsElementOrder) {
  Cigar c;
  c.push(CigarOp::kSoftClip, 2);
  c.push(CigarOp::kMatch, 7);
  c.reverse();
  EXPECT_EQ(c.to_string(), "7M2S");
}

TEST(Cigar, EqualityComparesContent) {
  EXPECT_EQ(Cigar::parse("5M"), Cigar::parse("2M3M"));
  EXPECT_FALSE(Cigar::parse("5M") == Cigar::parse("5I"));
}

}  // namespace
