// Shared helpers for the mera test suites: deterministic random sequence
// generators and seed ground-truth builders that were previously copy-pasted
// across test files. Everything is header-only and seeded by the caller so
// each test stays reproducible in isolation.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/protein.hpp"

namespace mera::testutil {

/// Uniform random DNA over {A,C,G,T}.
inline std::string random_dna(std::mt19937_64& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = "ACGT"[rng() & 3u];
  return s;
}

/// Uniform random protein over the 20 standard amino acids, drawn from the
/// library's own encoding order so testutil can never diverge from it.
inline std::string random_protein(std::mt19937_64& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = seq::kAminoOrder[rng() % 20];
  return s;
}

/// Ground-truth seed multimap: seed string -> hit, for every valid k-mer
/// window of every sequence. `make(sid, off)` builds the mapped value from
/// the sequence index and the window's offset, so callers can produce their
/// module's own hit type (e.g. dht::SeedHit).
template <typename Hit, typename MakeHit>
std::multimap<std::string, Hit> seed_ground_truth(
    const std::vector<std::string>& seqs, int k, MakeHit make) {
  std::multimap<std::string, Hit> truth;
  for (std::uint32_t sid = 0; sid < seqs.size(); ++sid)
    seq::for_each_seed(std::string_view(seqs[sid]), k,
                       [&](std::size_t off, const seq::Kmer& m) {
                         truth.emplace(m.to_string(), make(sid, off));
                       });
  return truth;
}

/// Occurrence count of each distinct seed across `seqs`.
inline std::map<std::string, int> seed_counts(
    const std::vector<std::string>& seqs, int k) {
  std::map<std::string, int> counts;
  for (const auto& s : seqs)
    seq::for_each_seed(std::string_view(s), k,
                       [&](std::size_t, const seq::Kmer& m) {
                         ++counts[m.to_string()];
                       });
  return counts;
}

}  // namespace mera::testutil
