#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "seq/dna.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera::seq;

TEST(GenomeSim, ProducesRequestedLengthAndAlphabet) {
  GenomeParams p;
  p.length = 50'000;
  const std::string g = simulate_genome(p);
  EXPECT_EQ(g.size(), p.length);
  EXPECT_TRUE(is_valid_dna(g));
}

TEST(GenomeSim, IsDeterministicPerSeed) {
  GenomeParams p;
  p.length = 10'000;
  p.rng_seed = 99;
  EXPECT_EQ(simulate_genome(p), simulate_genome(p));
  p.rng_seed = 100;
  EXPECT_NE(simulate_genome(GenomeParams{.length = 10'000, .rng_seed = 99}),
            simulate_genome(p));
}

TEST(GenomeSim, RepeatFractionCreatesDuplicateKmers) {
  GenomeParams with_rep;
  with_rep.length = 200'000;
  with_rep.repeat_fraction = 0.2;
  with_rep.repeat_divergence = 0.0;  // exact copies
  GenomeParams no_rep = with_rep;
  no_rep.repeat_fraction = 0.0;

  const auto count_dup_kmers = [](const std::string& g) {
    constexpr int k = 31;
    std::vector<std::string> kmers;
    for (std::size_t i = 0; i + k <= g.size(); i += 7)
      kmers.push_back(g.substr(i, k));
    std::sort(kmers.begin(), kmers.end());
    std::size_t dups = 0;
    for (std::size_t i = 1; i < kmers.size(); ++i)
      if (kmers[i] == kmers[i - 1]) ++dups;
    return dups;
  };

  EXPECT_GT(count_dup_kmers(simulate_genome(with_rep)),
            10 * (count_dup_kmers(simulate_genome(no_rep)) + 1));
}

TEST(GenomeSim, ZeroLengthGenome) {
  GenomeParams p;
  p.length = 0;
  EXPECT_TRUE(simulate_genome(p).empty());
}

TEST(ContigSim, ContigsComeFromTheGenomeWithTruthfulNames) {
  GenomeParams gp;
  gp.length = 100'000;
  const std::string g = simulate_genome(gp);
  ContigParams cp;
  const auto contigs = chop_into_contigs(g, cp);
  ASSERT_GT(contigs.size(), 5u);
  for (const auto& c : contigs) {
    const ContigTruth t = parse_contig_truth(c.name);
    ASSERT_LE(t.end, g.size());
    EXPECT_EQ(c.seq, g.substr(t.start, t.end - t.start));
    EXPECT_GE(c.seq.size(), cp.min_len);
    EXPECT_LE(c.seq.size(), cp.max_len);
  }
}

TEST(ContigSim, ContigsAreOrderedAndNonOverlapping) {
  const std::string g = simulate_genome({.length = 60'000, .rng_seed = 3});
  const auto contigs = chop_into_contigs(g, {});
  std::size_t prev_end = 0;
  for (const auto& c : contigs) {
    const ContigTruth t = parse_contig_truth(c.name);
    EXPECT_GE(t.start, prev_end);
    prev_end = t.end;
  }
}

TEST(ContigSim, BadParamsThrow) {
  EXPECT_THROW(chop_into_contigs("ACGT", {.min_len = 10, .max_len = 5}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_contig_truth("no_coords_here"),
               std::invalid_argument);
}

TEST(ReadSim, ProducesDepthScaledReadCount) {
  const std::string g = simulate_genome({.length = 50'000, .rng_seed = 5});
  ReadSimParams rp;
  rp.read_len = 100;
  rp.depth = 8.0;
  const auto reads = simulate_reads(g, rp);
  const auto expected = static_cast<std::size_t>(rp.depth * 50'000 / 100);
  EXPECT_EQ(reads.size(), expected);
  for (const auto& r : reads) {
    EXPECT_EQ(r.seq.size(), rp.read_len);
    EXPECT_EQ(r.qual.size(), rp.read_len);
  }
}

TEST(ReadSim, ErrorFreeReadsMatchGenomeAtTruthPosition) {
  const std::string g = simulate_genome({.length = 30'000, .rng_seed = 6});
  ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 2.0;
  rp.error_rate = 0.0;
  rp.junk_fraction = 0.0;
  rp.n_rate = 0.0;
  for (const auto& r : simulate_reads(g, rp)) {
    const ReadTruth t = parse_read_truth(r.name);
    ASSERT_FALSE(t.junk);
    const std::string genomic = g.substr(t.pos, rp.read_len);
    EXPECT_EQ(t.reverse ? reverse_complement(r.seq) : r.seq, genomic);
  }
}

TEST(ReadSim, ErrorRateIsRoughlyRespected) {
  const std::string g = simulate_genome({.length = 40'000, .rng_seed = 7});
  ReadSimParams rp;
  rp.read_len = 100;
  rp.depth = 5.0;
  rp.error_rate = 0.02;
  rp.junk_fraction = 0.0;
  rp.n_rate = 0.0;
  std::size_t mismatches = 0, bases = 0;
  for (const auto& r : simulate_reads(g, rp)) {
    const ReadTruth t = parse_read_truth(r.name);
    const std::string oriented = t.reverse ? reverse_complement(r.seq) : r.seq;
    const std::string genomic = g.substr(t.pos, rp.read_len);
    for (std::size_t i = 0; i < oriented.size(); ++i)
      mismatches += oriented[i] != genomic[i] ? 1u : 0u;
    bases += oriented.size();
  }
  const double rate = static_cast<double>(mismatches) / static_cast<double>(bases);
  EXPECT_GT(rate, 0.012);
  EXPECT_LT(rate, 0.028);
}

TEST(ReadSim, GroupedOrderingSortsByPosition) {
  const std::string g = simulate_genome({.length = 20'000, .rng_seed = 8});
  ReadSimParams rp;
  rp.depth = 3.0;
  rp.grouped = true;
  const auto reads = simulate_reads(g, rp);
  std::size_t prev = 0;
  for (const auto& r : reads) {
    const ReadTruth t = parse_read_truth(r.name);
    EXPECT_GE(t.pos, prev);
    prev = t.pos;
  }
}

TEST(ReadSim, UngroupedOrderingIsNotSorted) {
  const std::string g = simulate_genome({.length = 20'000, .rng_seed = 9});
  ReadSimParams rp;
  rp.depth = 3.0;
  rp.grouped = false;
  const auto reads = simulate_reads(g, rp);
  bool sorted = true;
  std::size_t prev = 0;
  for (const auto& r : reads) {
    const ReadTruth t = parse_read_truth(r.name);
    if (t.pos < prev) sorted = false;
    prev = t.pos;
  }
  EXPECT_FALSE(sorted);
}

TEST(ReadSim, JunkFractionIsMarkedAndRoughlyRight) {
  const std::string g = simulate_genome({.length = 50'000, .rng_seed = 10});
  ReadSimParams rp;
  rp.depth = 10.0;
  rp.junk_fraction = 0.1;
  const auto reads = simulate_reads(g, rp);
  std::size_t junk = 0;
  for (const auto& r : reads) junk += parse_read_truth(r.name).junk ? 1u : 0u;
  const double frac = static_cast<double>(junk) / static_cast<double>(reads.size());
  EXPECT_GT(frac, 0.06);
  EXPECT_LT(frac, 0.14);
}

TEST(ReadSim, PairedReadsComeInInsertSizedPairs) {
  const std::string g = simulate_genome({.length = 50'000, .rng_seed = 11});
  ReadSimParams rp;
  rp.read_len = 100;
  rp.depth = 4.0;
  rp.paired = true;
  rp.insert_mean = 300;
  rp.insert_sd = 10;
  rp.junk_fraction = 0.0;
  rp.grouped = false;  // keep pair adjacency
  const auto reads = simulate_reads(g, rp);
  // Consecutive mates: |pos difference| ~ insert - read_len.
  std::size_t paired_ok = 0, pairs = 0;
  for (std::size_t i = 0; i + 1 < reads.size(); i += 2) {
    const auto a = parse_read_truth(reads[i].name);
    const auto b = parse_read_truth(reads[i + 1].name);
    const auto dist = a.pos < b.pos ? b.pos - a.pos : a.pos - b.pos;
    ++pairs;
    if (dist >= 140 && dist <= 260 && a.reverse != b.reverse) ++paired_ok;
  }
  EXPECT_GT(static_cast<double>(paired_ok) / static_cast<double>(pairs), 0.9);
}

TEST(ReadSim, RejectsDegenerateInputs) {
  EXPECT_THROW(simulate_reads("ACG", {.read_len = 100}), std::invalid_argument);
  ReadSimParams zero;
  zero.read_len = 0;
  EXPECT_THROW(simulate_reads("ACGTACGT", zero), std::invalid_argument);
}

// Malformed truth encodings must be refused with the offending record named,
// not read out of bounds. `r0;pos=7;strand=` is the regression case: the
// name ends exactly where the strand character should be, and the parser
// used to index one past the end of the string.
TEST(ReadSim, TruthParserRejectsTruncatedStrandField) {
  try {
    (void)parse_read_truth("r0;pos=7;strand=");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("r0;pos=7;strand="),
              std::string::npos)
        << "error must name the offending read: " << e.what();
  }
}

TEST(ReadSim, TruthParserRejectsMalformedPosField) {
  for (const char* name :
       {"r1;pos=;strand=+", "r1;pos=xyz;strand=-",
        "r1;pos=99999999999999999999999999;strand=+"}) {
    try {
      (void)parse_read_truth(name);
      FAIL() << "expected std::invalid_argument for '" << name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << "error must name the offending read: " << e.what();
    }
  }
  // The well-formed shape still parses.
  const ReadTruth t = parse_read_truth("r2;pos=42;strand=-;junk=1");
  EXPECT_EQ(t.pos, 42u);
  EXPECT_TRUE(t.reverse);
  EXPECT_TRUE(t.junk);
}

TEST(ContigSim, TruthParserRejectsMalformedCoordinates) {
  for (const char* name :
       {"contig0:-", "contig1:abc-9", "contig2:5-def",
        "contig3:99999999999999999999999999-5"}) {
    try {
      (void)parse_contig_truth(name);
      FAIL() << "expected std::invalid_argument for '" << name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << "error must name the offending contig: " << e.what();
    }
  }
  const ContigTruth t = parse_contig_truth("contig4:10-25");
  EXPECT_EQ(t.start, 10u);
  EXPECT_EQ(t.end, 25u);
}

}  // namespace
