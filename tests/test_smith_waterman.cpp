#include "align/smith_waterman.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "seq/dna.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;

TEST(SmithWaterman, PerfectMatchScoresMatchTimesLength) {
  const Scoring sc;
  const std::string q = "ACGTACGTAC";
  const auto aln = smith_waterman(q, q, sc);
  EXPECT_EQ(aln.score, sc.match * static_cast<int>(q.size()));
  EXPECT_EQ(aln.cigar.to_string(), "10M");
  EXPECT_EQ(aln.q_begin, 0u);
  EXPECT_EQ(aln.q_end, q.size());
  EXPECT_EQ(aln.mismatches, 0);
}

TEST(SmithWaterman, SubstringIsFoundWithSoftClips) {
  const Scoring sc;
  const std::string t = "TTTTTTACGTACGTTTTTTT";
  const std::string q = "GGACGTACGTGG";  // core matches t[6..14)
  const auto aln = smith_waterman(q, t, sc);
  EXPECT_EQ(aln.q_begin, 2u);
  EXPECT_EQ(aln.q_end, 10u);
  EXPECT_EQ(aln.t_begin, 6u);
  EXPECT_EQ(aln.t_end, 14u);
  EXPECT_EQ(aln.cigar.to_string(), "2S8M2S");
  EXPECT_EQ(aln.score, 8 * sc.match);
}

TEST(SmithWaterman, SingleMismatchInMiddle) {
  const Scoring sc;
  std::string q = "ACGTACGTACGTACGTACGT";
  std::string t = q;
  t[10] = mera::seq::complement_base(t[10]);
  const auto aln = smith_waterman(q, t, sc);
  // Full-length alignment with one mismatch beats clipping for these scores.
  EXPECT_EQ(aln.score, 19 * sc.match + sc.mismatch);
  EXPECT_EQ(aln.mismatches, 1);
  EXPECT_EQ(aln.cigar.to_string(), "20M");
}

TEST(SmithWaterman, DeletionInQueryProducesD) {
  const Scoring sc;
  const std::string t = "ACGTACGTTTACGTACGT";
  // Query = target with the middle "TT" removed => 2-base deletion (in
  // query relative to target).
  const std::string q = "ACGTACGTACGTACGT";
  const auto aln = smith_waterman(q, t, sc);
  // Gap placement can tie (the deleted TT may slide); check structure.
  EXPECT_NE(aln.cigar.to_string().find("2D"), std::string::npos)
      << aln.cigar.to_string();
  EXPECT_EQ(aln.score, 16 * sc.match - (sc.gap_open + 2 * sc.gap_extend));
  EXPECT_EQ(aln.gap_columns, 2);
  EXPECT_EQ(aln.cigar.target_span(), 18u);
}

TEST(SmithWaterman, InsertionInQueryProducesI) {
  const Scoring sc;
  const std::string t = "ACGTACGTACGTACGT";
  const std::string q = "ACGTACGTTTACGTACGT";  // extra TT in query
  const auto aln = smith_waterman(q, t, sc);
  EXPECT_NE(aln.cigar.to_string().find("2I"), std::string::npos)
      << aln.cigar.to_string();
  EXPECT_EQ(aln.gap_columns, 2);
  EXPECT_EQ(aln.cigar.target_span(), 16u);
}

TEST(SmithWaterman, NoPositiveAlignmentIsAllSoftClip) {
  const auto aln = smith_waterman("AAAA", "TTTT", Scoring{});
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.empty());
  EXPECT_EQ(aln.cigar.to_string(), "4S");
}

TEST(SmithWaterman, EmptyInputs) {
  EXPECT_EQ(smith_waterman("", "ACGT", Scoring{}).score, 0);
  EXPECT_EQ(smith_waterman("ACGT", "", Scoring{}).score, 0);
}

TEST(SmithWaterman, ScoreMatchesScoreOnlyReference) {
  std::mt19937_64 rng(31);
  const Scoring sc;
  for (int trial = 0; trial < 60; ++trial) {
    const auto q = dna_codes(random_dna(rng, 20 + rng() % 80));
    const auto t = dna_codes(random_dna(rng, 20 + rng() % 200));
    const auto aln = smith_waterman(std::span<const std::uint8_t>(q),
                                    std::span<const std::uint8_t>(t), sc);
    EXPECT_EQ(aln.score, sw_score_reference(std::span<const std::uint8_t>(q),
                                            std::span<const std::uint8_t>(t), sc));
  }
}

TEST(SmithWaterman, CigarIsConsistentWithSpansAndScore) {
  // Property: on random inputs the traceback must (a) consume exactly the
  // query, (b) consume t_end-t_begin target bases, and (c) re-derive the
  // reported score when replayed column by column.
  std::mt19937_64 rng(32);
  const Scoring sc;
  for (int trial = 0; trial < 80; ++trial) {
    const std::string qs = random_dna(rng, 15 + rng() % 60);
    const std::string ts = random_dna(rng, 30 + rng() % 120);
    const auto aln = smith_waterman(qs, ts, sc);
    EXPECT_EQ(aln.cigar.query_span(), qs.size());
    EXPECT_EQ(aln.cigar.target_span(), aln.t_end - aln.t_begin);

    // Replay.
    int score = 0, mismatches = 0;
    std::size_t qi = 0, ti = aln.t_begin;
    for (const auto& e : aln.cigar.elems()) {
      switch (e.op) {
        case CigarOp::kSoftClip:
          qi += e.len;
          break;
        case CigarOp::kMatch:
          for (std::uint32_t i = 0; i < e.len; ++i, ++qi, ++ti) {
            if (qs[qi] == ts[ti]) {
              score += sc.match;
            } else {
              score += sc.mismatch;
              ++mismatches;
            }
          }
          break;
        case CigarOp::kInsert:
          score -= sc.gap_open + static_cast<int>(e.len) * sc.gap_extend;
          qi += e.len;
          break;
        case CigarOp::kDelete:
          score -= sc.gap_open + static_cast<int>(e.len) * sc.gap_extend;
          ti += e.len;
          break;
      }
    }
    if (aln.score > 0) {
      EXPECT_EQ(score, aln.score) << "q=" << qs << " t=" << ts;
      EXPECT_EQ(mismatches, aln.mismatches);
    }
  }
}

struct ScoringCase {
  Scoring sc;
  const char* label;
};

class SwScoringSchemes : public ::testing::TestWithParam<ScoringCase> {};

TEST_P(SwScoringSchemes, TracebackScoreEqualsDpScore) {
  std::mt19937_64 rng(33);
  const Scoring sc = GetParam().sc;
  for (int trial = 0; trial < 30; ++trial) {
    const std::string qs = random_dna(rng, 20 + rng() % 50);
    const std::string ts = random_dna(rng, 20 + rng() % 100);
    const auto aln = smith_waterman(qs, ts, sc);
    EXPECT_EQ(aln.score, sw_score_reference(
                             std::span<const std::uint8_t>(dna_codes(qs)),
                             std::span<const std::uint8_t>(dna_codes(ts)), sc));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CommonSchemes, SwScoringSchemes,
    ::testing::Values(ScoringCase{{2, -2, 3, 1}, "ssw_default"},
                      ScoringCase{{1, -3, 5, 2}, "blastn_like"},
                      ScoringCase{{1, -1, 0, 1}, "lcs_like"},
                      ScoringCase{{5, -4, 10, 1}, "long_gap_averse"}),
    [](const auto& info) { return info.param.label; });

TEST(SmithWaterman, AlignmentIsSymmetricUnderSwap) {
  // score(q,t) == score(t,q) for symmetric substitution scores.
  std::mt19937_64 rng(34);
  const Scoring sc;
  for (int trial = 0; trial < 30; ++trial) {
    const std::string a = random_dna(rng, 30 + rng() % 50);
    const std::string b = random_dna(rng, 30 + rng() % 50);
    EXPECT_EQ(smith_waterman(a, b, sc).score, smith_waterman(b, a, sc).score);
  }
}

TEST(SmithWaterman, ScoreInvariantUnderReverseComplement) {
  std::mt19937_64 rng(35);
  const Scoring sc;
  for (int trial = 0; trial < 30; ++trial) {
    const std::string q = random_dna(rng, 40);
    const std::string t = random_dna(rng, 120);
    EXPECT_EQ(smith_waterman(q, t, sc).score,
              smith_waterman(mera::seq::reverse_complement(q),
                             mera::seq::reverse_complement(t), sc)
                  .score);
  }
}

}  // namespace
