#include "core/exact_match.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

#include "align/smith_waterman.hpp"
#include "seq/kmer.hpp"
#include "seq/packed_seq.hpp"

namespace {

using namespace mera::core;
using mera::dht::SeedHit;
using mera::seq::PackedSeq;

TEST(ExactPlacement, CentersQueryOnSeed) {
  // Seed at query offset 10 found at target position 50 => query begins at 40.
  const SeedHit hit{0, 7, 50};
  const auto pl = exact_placement(hit, 10, 100, 1000);
  ASSERT_TRUE(pl.has_value());
  EXPECT_EQ(pl->target_id, 7u);
  EXPECT_EQ(pl->t_begin, 40u);
}

TEST(ExactPlacement, RejectsLeftOverhang) {
  const SeedHit hit{0, 1, 5};
  EXPECT_FALSE(exact_placement(hit, 10, 100, 1000).has_value());
}

TEST(ExactPlacement, RejectsRightOverhang) {
  const SeedHit hit{0, 1, 950};
  // Query begins at 940, needs 100 bases, target has 1000: 940+100 > 1000.
  EXPECT_FALSE(exact_placement(hit, 10, 100, 1000).has_value());
}

TEST(ExactPlacement, ExactFitAtBothEdges) {
  EXPECT_TRUE(exact_placement(SeedHit{0, 1, 0}, 0, 100, 100).has_value());
  EXPECT_TRUE(exact_placement(SeedHit{0, 1, 80}, 80, 100, 100).has_value());
  EXPECT_FALSE(exact_placement(SeedHit{0, 1, 81}, 80, 100, 100).has_value());
}

TEST(ExactCompare, MatchesAndMismatches) {
  std::mt19937_64 rng(81);
  std::string g(500, 'A');
  for (auto& c : g) c = "ACGT"[rng() & 3u];
  const PackedSeq target(g);
  const PackedSeq query(g.substr(123, 90));
  EXPECT_TRUE(exact_compare(query, target, {0, 123}));
  EXPECT_FALSE(exact_compare(query, target, {0, 124}));
}

TEST(Lemma1, UniqueSeedImpliesUniqueFullLengthPlacement) {
  // Empirical check of Lemma 1: build targets with known unique seeds; if a
  // query exact-matches a target whose seeds are all unique, then no *other*
  // target contains the query anywhere.
  std::mt19937_64 rng(82);
  const int k = 11;
  std::vector<std::string> targets;
  for (int i = 0; i < 6; ++i) {
    std::string t(300, 'A');
    for (auto& c : t) c = "ACGT"[rng() & 3u];
    targets.push_back(std::move(t));
  }

  // Count seed occurrences across all targets.
  std::map<std::string, int> seed_count =
      mera::testutil::seed_counts(targets, k);

  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    // Does target ti have all-unique seeds?
    bool single_copy = true;
    mera::seq::for_each_seed(std::string_view(targets[ti]), k,
                             [&](std::size_t, const mera::seq::Kmer& m) {
                               if (seed_count[m.to_string()] > 1)
                                 single_copy = false;
                             });
    if (!single_copy) continue;
    // Any full-length query drawn from ti must occur in no other target.
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t pos = rng() % (targets[ti].size() - 60);
      const std::string q = targets[ti].substr(pos, 60);
      for (std::size_t tj = 0; tj < targets.size(); ++tj) {
        if (tj == ti) continue;
        EXPECT_EQ(targets[tj].find(q), std::string::npos)
            << "Lemma 1 violated: query from target " << ti
            << " found in target " << tj;
      }
    }
  }
}

TEST(Lemma1, ScoreOfExactPathEqualsSmithWaterman) {
  // The fast path must report the same result SW would have produced.
  std::mt19937_64 rng(83);
  std::string g(800, 'A');
  for (auto& c : g) c = "ACGT"[rng() & 3u];
  const PackedSeq target(g);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t pos = rng() % 700;
    const std::string q = g.substr(pos, 100);
    const PackedSeq qp(q);
    ASSERT_TRUE(exact_compare(qp, target, {0, pos}));
    // memcmp fast-path score convention: match * len == full-DP score.
    const auto aln = mera::align::smith_waterman(q, g);
    EXPECT_EQ(aln.score, mera::align::Scoring{}.match * 100);
    EXPECT_EQ(aln.t_begin, pos);
  }
}

}  // namespace
