#include "align/striped_sw.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "align/smith_waterman.hpp"
#include "seq/dna.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;

TEST(StripedSw, PerfectMatch) {
  const Scoring sc;
  const std::string q = "ACGTACGTACGTACGT";
  const StripedSmithWaterman ssw(q, sc);
  const auto res = ssw.align(q);
  EXPECT_EQ(res.score, sc.match * static_cast<int>(q.size()));
  EXPECT_EQ(res.t_end, q.size() - 1);
}

TEST(StripedSw, EmptyInputsScoreZero) {
  const Scoring sc;
  const StripedSmithWaterman ssw(std::string_view(""), sc);
  EXPECT_EQ(ssw.align("ACGT").score, 0);
  const StripedSmithWaterman ssw2(std::string_view("ACGT"), sc);
  EXPECT_EQ(ssw2.align("").score, 0);
}

TEST(StripedSw, MatchesReferenceOnRandomPairs) {
  std::mt19937_64 rng(51);
  const Scoring sc;
  for (int trial = 0; trial < 150; ++trial) {
    const std::string q = random_dna(rng, 1 + rng() % 150);
    const std::string t = random_dna(rng, 1 + rng() % 300);
    const StripedSmithWaterman ssw(q, sc);
    const auto res = ssw.align(t);
    const int expect = sw_score_reference(
        std::span<const std::uint8_t>(dna_codes(q)),
        std::span<const std::uint8_t>(dna_codes(t)), sc);
    ASSERT_EQ(res.score, expect)
        << "trial=" << trial << " q=" << q << " t=" << t;
  }
}

struct SchemeCase {
  Scoring sc;
  const char* label;
};

class StripedSchemes : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(StripedSchemes, MatchesReference) {
  std::mt19937_64 rng(52);
  const Scoring sc = GetParam().sc;
  for (int trial = 0; trial < 60; ++trial) {
    const std::string q = random_dna(rng, 10 + rng() % 120);
    const std::string t = random_dna(rng, 10 + rng() % 250);
    const StripedSmithWaterman ssw(q, sc);
    ASSERT_EQ(ssw.align(t).score,
              sw_score_reference(std::span<const std::uint8_t>(dna_codes(q)),
                                 std::span<const std::uint8_t>(dna_codes(t)),
                                 sc))
        << "q=" << q << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, StripedSchemes,
    ::testing::Values(SchemeCase{{2, -2, 3, 1}, "ssw_default"},
                      SchemeCase{{1, -3, 5, 2}, "blastn_like"},
                      SchemeCase{{3, -1, 1, 1}, "gap_friendly"},
                      SchemeCase{{1, -1, 0, 1}, "lcs_like"}),
    [](const auto& info) { return info.param.label; });

TEST(StripedSw, SimilarSequencesWithIndels) {
  std::mt19937_64 rng(53);
  const Scoring sc;
  for (int trial = 0; trial < 50; ++trial) {
    const std::string t = random_dna(rng, 200);
    std::string q = t.substr(rng() % 80, 100);
    // Mutate: substitutions + an indel.
    for (int e = 0; e < 5; ++e)
      q[rng() % q.size()] = "ACGT"[rng() & 3u];
    if (trial % 3 == 0) q.erase(rng() % (q.size() - 3), 2);
    if (trial % 3 == 1) q.insert(rng() % q.size(), "GT");
    const StripedSmithWaterman ssw(q, sc);
    ASSERT_EQ(ssw.align(t).score,
              sw_score_reference(std::span<const std::uint8_t>(dna_codes(q)),
                                 std::span<const std::uint8_t>(dna_codes(t)),
                                 sc));
  }
}

TEST(StripedSw, Overflow8BitFallsBackTo16Bit) {
  // Long perfect match: score = 2*600 = 1200 >> 255 forces the 16-bit pass.
  std::mt19937_64 rng(54);
  const Scoring sc;
  const std::string q = random_dna(rng, 600);
  const StripedSmithWaterman ssw(q, sc);
  const auto res = ssw.align(q);
  EXPECT_EQ(res.score, 1200);
  if (StripedSmithWaterman::simd_enabled()) {
    EXPECT_TRUE(res.used_16bit);
  }
}

TEST(StripedSw, TEndPointsAtBestColumn) {
  const Scoring sc;
  const std::string q = "ACGTACGTAC";
  const std::string t = "TTTTTTTTTT" + q + "TTTTTTTTTT";
  const StripedSmithWaterman ssw(q, sc);
  const auto res = ssw.align(t);
  EXPECT_EQ(res.score, sc.match * 10);
  EXPECT_EQ(res.t_end, 19u);  // alignment ends at t[19]
}

TEST(StripedSw, TiedScoresPickSmallestTEnd) {
  // Regression: the SIMD passes take the FIRST best column; the scalar
  // fallback used to take the first best cell in row-major order, which for
  // tied scores is a later column — so t_end diverged across platforms. The
  // pinned contract is smallest t_end, on every path.
  const Scoring sc;
  const std::string q = "ACGTAC";
  const std::string t = q + q + q;  // best score ends at t[5], t[11], t[17]
  const StripedSmithWaterman ssw(q, sc);
  EXPECT_EQ(ssw.align(t).t_end, 5u);
  const auto scalar = striped_scalar_score(
      std::span<const std::uint8_t>(dna_codes(q)),
      std::span<const std::uint8_t>(dna_codes(t)), sc);
  EXPECT_EQ(scalar.score, sc.match * 6);
  EXPECT_EQ(scalar.t_end, 5u);
}

TEST(StripedSw, ScalarReferenceMatchesSimdTEndOnRandomPairs) {
  // The divergence regression, property-tested: score AND t_end must agree
  // between the scalar reference and whatever path align() compiled to.
  // Short targets + short queries make score ties common.
  std::mt19937_64 rng(56);
  const Scoring sc;
  for (int trial = 0; trial < 300; ++trial) {
    const std::string q = random_dna(rng, 1 + rng() % 12);
    const std::string t = random_dna(rng, 1 + rng() % 40);
    const auto qc = dna_codes(q);
    const auto tc = dna_codes(t);
    const StripedSmithWaterman ssw(std::span<const std::uint8_t>(qc), sc);
    const auto simd = ssw.align(std::span<const std::uint8_t>(tc));
    const auto scalar = striped_scalar_score(qc, tc, sc);
    ASSERT_EQ(simd.score, scalar.score) << "q=" << q << " t=" << t;
    ASSERT_EQ(simd.t_end, scalar.t_end) << "q=" << q << " t=" << t;
  }
}

TEST(StripedSw, ProfileReuseAcrossManyTargets) {
  // One profile, many targets — the aligning-phase usage pattern.
  std::mt19937_64 rng(55);
  const Scoring sc;
  const std::string q = random_dna(rng, 101);
  const StripedSmithWaterman ssw(q, sc);
  for (int i = 0; i < 20; ++i) {
    const std::string t = random_dna(rng, 150 + rng() % 150);
    ASSERT_EQ(ssw.align(t).score,
              sw_score_reference(std::span<const std::uint8_t>(dna_codes(q)),
                                 std::span<const std::uint8_t>(dna_codes(t)),
                                 sc));
  }
}

TEST(StripedSw, QueryShorterThanOneStripe) {
  const Scoring sc;
  const StripedSmithWaterman ssw(std::string_view("ACG"), sc);
  EXPECT_EQ(ssw.align("TTACGTT").score, 3 * sc.match);
}

}  // namespace
