// The session-based aligner API: IndexedReference (build once) +
// AlignSession (stream query batches) + AlignmentSink outputs.
//
// The two contracts that matter:
//   1. equivalence — the session API reports exactly the records the legacy
//      one-shot MerAligner::align reports, even when queries arrive in
//      several batches;
//   2. reuse — a batch's PhaseReport never contains the index phases, so a
//      second batch demonstrably pays no index reconstruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>

#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera::core;
using mera::align::SwKernel;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       double error_rate = 0.0, std::uint64_t seed = 7) {
  Workload w;
  mera::seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  mera::seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = error_rate;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

IndexConfig small_index(int k = 21) {
  IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

SessionConfig small_session() {
  SessionConfig sc;
  sc.seed_cache_capacity = 1u << 14;
  sc.target_cache_bytes = 8u << 20;
  sc.permute_queries = false;  // keep batch splits comparable
  return sc;
}

AlignerConfig legacy_config(int k = 21) {
  AlignerConfig cfg;
  cfg.k = k;
  cfg.buffer_S = 64;
  cfg.fragment_len = 512;
  cfg.seed_cache_capacity = 1u << 14;
  cfg.target_cache_bytes = 8u << 20;
  cfg.permute_queries = false;
  return cfg;
}

void sort_records(std::vector<AlignmentRecord>& recs) {
  std::sort(recs.begin(), recs.end(),
            [](const AlignmentRecord& a, const AlignmentRecord& b) {
              return std::tie(a.query_name, a.target_id, a.t_begin, a.reverse,
                              a.score) < std::tie(b.query_name, b.target_id,
                                                  b.t_begin, b.reverse,
                                                  b.score);
            });
}

TEST(Session, BatchedSessionMatchesOneShotAlignerBitIdentically) {
  const auto w = make_workload(30'000, 1.5, /*error=*/0.005);

  // Legacy one-shot path over all reads.
  Runtime rt1(Topology(4, 2));
  auto one_shot = MerAligner(legacy_config()).align(rt1, w.contigs, w.reads);

  // Session path: same reads in three batches against one index.
  Runtime rt2(Topology(4, 2));
  const auto ref = IndexedReference::build(rt2, w.contigs, small_index());
  AlignSession session(ref, small_session());
  VectorSink sink(rt2.nranks());
  std::vector<AlignmentRecord> batched;
  const std::size_t third = w.reads.size() / 3;
  const std::vector<std::vector<SeqRecord>> batches = {
      {w.reads.begin(), w.reads.begin() + third},
      {w.reads.begin() + third, w.reads.begin() + 2 * third},
      {w.reads.begin() + 2 * third, w.reads.end()},
  };
  for (const auto& b : batches) {
    (void)session.align_batch(rt2, b, sink);
    for (auto& rec : sink.take()) batched.push_back(std::move(rec));
  }

  sort_records(one_shot.alignments);
  sort_records(batched);
  ASSERT_EQ(one_shot.alignments.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(one_shot.alignments[i], batched[i]) << "record " << i;
}

TEST(Session, SecondBatchSkipsIndexConstructionPhases) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(4, 2));
  const auto ref = IndexedReference::build(rt, w.contigs, small_index());

  // Index phases happened exactly once, at build time.
  EXPECT_NE(ref.build_report().find("index.build"), nullptr);
  EXPECT_NE(ref.build_report().find("index.mark"), nullptr);
  EXPECT_NE(ref.build_report().find("io.targets"), nullptr);

  AlignSession session(ref, small_session());
  VectorSink sink(rt.nranks());
  const auto b1 = session.align_batch(rt, w.reads, sink);
  const std::size_t n1 = sink.take().size();
  const auto b2 = session.align_batch(rt, w.reads, sink);
  const std::size_t n2 = sink.take().size();

  for (const auto* batch : {&b1, &b2}) {
    EXPECT_EQ(batch->report.find("index.build"), nullptr);
    EXPECT_EQ(batch->report.find("index.mark"), nullptr);
    EXPECT_EQ(batch->report.find("io.targets"), nullptr);
    EXPECT_NE(batch->report.find("io.reads"), nullptr);
    EXPECT_NE(batch->report.find("align"), nullptr);
  }
  EXPECT_EQ(session.batches_aligned(), 2u);
  EXPECT_GT(n1, 0u);
  EXPECT_EQ(n1, n2);  // same reads, same index -> same records
  EXPECT_EQ(b1.stats.reads_processed, b2.stats.reads_processed);
}

TEST(Session, CachesPersistAcrossBatchesAndCountersArePerBatch) {
  const auto w = make_workload(30'000, 1.5);
  Runtime rt(Topology(8, 2));  // 4 nodes -> off-node traffic to cache
  const auto ref = IndexedReference::build(rt, w.contigs, small_index());
  SessionConfig sc = small_session();
  sc.exact_match = false;          // keep lookup volume high
  sc.seed_cache_capacity = 1u << 18;   // no evictions: warm-cache claim is
  sc.target_cache_bytes = 64u << 20;   // about persistence, not replacement
  AlignSession session(ref, sc);
  CountingSink sink;
  const auto b1 = session.align_batch(rt, w.reads, sink);
  const auto b2 = session.align_batch(rt, w.reads, sink);

  // Batch counters are deltas: their sum is the session cumulative total.
  const auto total = session.seed_cache_counters();
  EXPECT_EQ(b1.seed_cache.hits + b2.seed_cache.hits, total.hits);
  EXPECT_EQ(b1.seed_cache.misses + b2.seed_cache.misses, total.misses);

  // The second pass over identical reads hits the warm session caches at
  // least as often as the cold first pass.
  EXPECT_GE(b2.seed_cache.hits, b1.seed_cache.hits);
  EXPECT_GE(b2.target_cache.hits, b1.target_cache.hits);
}

TEST(Session, SinksAgreeAndSamStreamsEveryBatch) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(4, 2));
  const auto ref = IndexedReference::build(rt, w.contigs, small_index());
  AlignSession session(ref, small_session());

  VectorSink vec(rt.nranks());
  CountingSink count;
  std::ostringstream sam_text;
  SamStreamSink sam(sam_text, ref);
  TeeSink tee({&vec, &count, &sam});

  const auto b1 = session.align_batch(rt, w.reads, tee);
  const auto records_b1 = vec.take();
  const auto b2 = session.align_batch(rt, w.reads, tee);
  const auto records_b2 = vec.take();

  EXPECT_EQ(records_b1.size(), b1.stats.alignments_reported);
  EXPECT_EQ(count.records(), b1.stats.alignments_reported +
                                 b2.stats.alignments_reported);
  EXPECT_EQ(sam.records_written(), count.records());

  // One header, then one line per record across both batches.
  std::istringstream in(sam_text.str());
  std::string line;
  std::size_t headers = 0, body = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '@') ++headers;
    else if (!line.empty()) ++body;
  }
  EXPECT_GE(headers, w.contigs.size() + 2);  // @HD + @SQs + @PG, written once
  EXPECT_EQ(body, count.records());
}

TEST(Session, StripedBackendReportsIdenticalRecords) {
  const auto w = make_workload(25'000, 1.2, /*error=*/0.01);
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  const auto ref1 = IndexedReference::build(rt1, w.contigs, small_index());
  const auto ref2 = IndexedReference::build(rt2, w.contigs, small_index());

  SessionConfig full = small_session();
  full.exact_match = false;  // force every candidate through the SW kernel
  SessionConfig striped = full;
  striped.extension.kernel = SwKernel::kStriped;

  AlignSession s1(ref1, full), s2(ref2, striped);
  VectorSink sink1(rt1.nranks()), sink2(rt2.nranks());
  (void)s1.align_batch(rt1, w.reads, sink1);
  (void)s2.align_batch(rt2, w.reads, sink2);

  auto r1 = sink1.take();
  auto r2 = sink2.take();
  sort_records(r1);
  sort_records(r2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
}

TEST(Session, BatchBackendReportsIdenticalRecordsOnEveryIsaTier) {
  // The inter-candidate batch engine must be a drop-in for the per-pair
  // striped screen: same records, same number of SW screens, on every
  // dispatch tier this host supports.
  const auto w = make_workload(25'000, 1.2, /*error=*/0.01);
  Runtime rt1(Topology(4, 2));
  const auto ref1 = IndexedReference::build(rt1, w.contigs, small_index());

  SessionConfig striped = small_session();
  striped.exact_match = false;  // force every candidate through the SW kernel
  striped.extension.kernel = SwKernel::kStriped;
  AlignSession s1(ref1, striped);
  VectorSink sink1(rt1.nranks());
  const auto res1 = s1.align_batch(rt1, w.reads, sink1);
  auto r1 = sink1.take();
  sort_records(r1);
  ASSERT_GT(r1.size(), 0u);

  for (const mera::align::SwIsa isa :
       {mera::align::SwIsa::kScalar, mera::align::SwIsa::kSse2,
        mera::align::SwIsa::kAvx2, mera::align::SwIsa::kAvx512}) {
    if (!mera::align::isa_supported(isa)) continue;
    Runtime rt2(Topology(4, 2));
    const auto ref2 = IndexedReference::build(rt2, w.contigs, small_index());
    SessionConfig batch = striped;
    batch.extension.kernel = SwKernel::kBatch;
    batch.extension.isa = isa;
    AlignSession s2(ref2, batch);
    VectorSink sink2(rt2.nranks());
    const auto res2 = s2.align_batch(rt2, w.reads, sink2);
    auto r2 = sink2.take();
    sort_records(r2);
    ASSERT_EQ(r1.size(), r2.size()) << mera::align::isa_name(isa);
    for (std::size_t i = 0; i < r1.size(); ++i)
      ASSERT_EQ(r1[i], r2[i]) << mera::align::isa_name(isa) << " i=" << i;
    // Batch mode buffers candidates instead of extending inline, but must
    // screen exactly the same candidate set.
    EXPECT_EQ(res1.stats.sw_calls, res2.stats.sw_calls)
        << mera::align::isa_name(isa);
  }
}

TEST(Session, BandedBackendAlignsTheSameReadSet) {
  const auto w = make_workload(25'000, 1.2);
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  const auto ref1 = IndexedReference::build(rt1, w.contigs, small_index());
  const auto ref2 = IndexedReference::build(rt2, w.contigs, small_index());

  SessionConfig banded = small_session();
  banded.extension.kernel = SwKernel::kBanded;

  AlignSession s1(ref1, small_session()), s2(ref2, banded);
  CountingSink c1, c2;
  const auto full = s1.align_batch(rt1, w.reads, c1);
  const auto band = s2.align_batch(rt2, w.reads, c2);
  EXPECT_EQ(full.stats.reads_aligned, band.stats.reads_aligned);
}

TEST(Session, UnmarkedReferenceDisablesExactMatchPath) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(4, 2));
  IndexConfig ic = small_index();
  ic.exact_match = false;  // no index.mark -> flags are not trustworthy
  const auto ref = IndexedReference::build(rt, w.contigs, ic);
  EXPECT_FALSE(ref.exact_match_marked());
  EXPECT_EQ(ref.build_report().find("index.mark"), nullptr);

  AlignSession session(ref, small_session());  // cfg asks for exact_match
  CountingSink sink;
  const auto res = session.align_batch(rt, w.reads, sink);
  EXPECT_EQ(res.stats.exact_match_reads, 0u);
  EXPECT_GT(res.stats.reads_aligned, 0u);
}

TEST(Session, TopologyMismatchIsRejected) {
  const auto w = make_workload(10'000, 0.5);
  Runtime rt(Topology(4, 2));
  const auto ref = IndexedReference::build(rt, w.contigs, small_index());
  AlignSession session(ref, small_session());
  CountingSink sink;
  Runtime other(Topology(2, 2));
  EXPECT_THROW((void)session.align_batch(other, w.reads, sink),
               std::invalid_argument);
}

TEST(Session, LegacyWrapperReportKeepsTheFusedPhaseShape) {
  // MerAligner::align must still present the five-phase report the seed API
  // produced, stitched from the build and batch runs.
  const auto w = make_workload(10'000, 0.5);
  Runtime rt(Topology(2, 2));
  const auto res = MerAligner(legacy_config()).align(rt, w.contigs, w.reads);
  for (const char* name :
       {"io.targets", "index.build", "index.mark", "io.reads", "align"})
    EXPECT_NE(res.report.find(name), nullptr) << name;
  EXPECT_GT(res.stats.seeds_indexed, 0u);
  EXPECT_GT(res.stats.reads_aligned, 0u);
}

}  // namespace
