#include "pgas/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using namespace mera::pgas;

TEST(Topology, NodeArithmetic) {
  const Topology t(24, 8);
  EXPECT_EQ(t.nnodes(), 3);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(23), 2);
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
  EXPECT_EQ(t.leader_of_node(2), 16);
}

TEST(Topology, RaggedLastNode) {
  const Topology t(10, 4);
  EXPECT_EQ(t.nnodes(), 3);
  EXPECT_EQ(t.node_of(9), 2);
}

TEST(Topology, RejectsBadArguments) {
  EXPECT_THROW(Topology(0, 1), std::invalid_argument);
  EXPECT_THROW(Topology(4, 0), std::invalid_argument);
}

TEST(Runtime, RunsEveryRankExactlyOnce) {
  Runtime rt(Topology(8, 4));
  std::vector<std::atomic<int>> visits(8);
  rt.run([&](Rank& r) { ++visits[static_cast<std::size_t>(r.id())]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Runtime, BarrierSynchronizesPhases) {
  Runtime rt(Topology(6, 3));
  std::atomic<int> before{0}, violations{0};
  rt.run([&](Rank& r) {
    ++before;
    r.barrier();
    if (before.load() != 6) ++violations;
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(Runtime, PhaseReportHasAllPhasesInOrder) {
  Runtime rt(Topology(4, 2));
  rt.run([](Rank& r) {
    r.phase("alpha");
    r.phase("beta");
    r.phase("gamma");
  });
  const auto& rep = rt.report();
  // startup + 3 named phases.
  ASSERT_EQ(rep.phases.size(), 4u);
  EXPECT_EQ(rep.phases[0].name, "startup");
  EXPECT_EQ(rep.phases[1].name, "alpha");
  EXPECT_EQ(rep.phases[3].name, "gamma");
  EXPECT_NE(rep.find("beta"), nullptr);
  EXPECT_EQ(rep.find("delta"), nullptr);
  for (const auto& ph : rep.phases) {
    EXPECT_EQ(ph.cpu_s.size(), 4u);
    EXPECT_GE(ph.time_s(), 0.0);
  }
}

TEST(Runtime, ChargeAccessClassifiesLocalNodeNetwork) {
  Runtime rt(Topology(4, 2));  // ranks {0,1} node 0, {2,3} node 1
  rt.run([](Rank& r) {
    if (r.id() == 0) {
      r.charge_access(0, 100);  // local
      r.charge_access(1, 200);  // same node
      r.charge_access(2, 300);  // off node
      EXPECT_EQ(r.stats().local_ops, 1u);
      EXPECT_EQ(r.stats().node_msgs, 1u);
      EXPECT_EQ(r.stats().node_bytes, 200u);
      EXPECT_EQ(r.stats().net_msgs, 1u);
      EXPECT_EQ(r.stats().net_bytes, 300u);
      EXPECT_GT(r.stats().comm_time_s, 0.0);
    }
  });
}

TEST(Runtime, OffNodeCostsMoreThanOnNode) {
  Runtime rt(Topology(4, 2));
  rt.run([](Rank& r) {
    if (r.id() != 0) return;
    const auto& cm = r.cost_model();
    EXPECT_GT(cm.transfer_time(true, 1024), cm.transfer_time(false, 1024));
    EXPECT_GT(cm.atomic_time(true), cm.atomic_time(false));
  });
}

TEST(Runtime, GetCopiesRemoteData) {
  Runtime rt(Topology(4, 2));
  std::vector<std::vector<int>> owned(4);
  rt.run([&](Rank& r) {
    auto& mine = owned[static_cast<std::size_t>(r.id())];
    mine.assign(16, r.id() * 10);
    r.barrier();
    // Everyone gets rank 3's data.
    std::vector<int> dst(16, -1);
    r.get(3, owned[3].data(), dst.data(), dst.size());
    for (int v : dst) EXPECT_EQ(v, 30);
    if (r.id() != 3) {
      EXPECT_EQ(r.stats().remote_msgs(), 1u);
    }
  });
}

TEST(Runtime, AtomicFetchAddIsGloballyAtomic) {
  Runtime rt(Topology(8, 4));
  GlobalCounter counter(0, 0);
  std::vector<std::uint64_t> seen(8 * 100);
  rt.run([&](Rank& r) {
    for (int i = 0; i < 100; ++i) {
      const auto slot = r.atomic_fetch_add(counter, 1);
      seen[slot] = 1;
    }
  });
  EXPECT_EQ(counter.load_unsync(), 800u);
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0ull), 800u);
}

TEST(Runtime, AtomicChargesRemoteButNotOwner) {
  Runtime rt(Topology(2, 1));
  GlobalCounter counter(0, 0);
  std::vector<double> comm(2, 0.0);
  rt.run([&](Rank& r) {
    r.atomic_fetch_add(counter, 1);
    comm[static_cast<std::size_t>(r.id())] = r.stats().comm_time_s;
  });
  EXPECT_EQ(comm[0], 0.0);   // owner pays nothing
  EXPECT_GT(comm[1], 0.0);   // remote pays the round trip
}

TEST(Runtime, ExceptionInOneRankPropagates) {
  Runtime rt(Topology(4, 2));
  EXPECT_THROW(rt.run([](Rank& r) {
                 if (r.id() == 2) throw std::runtime_error("rank 2 boom");
                 r.barrier();  // others must not deadlock
               }),
               std::runtime_error);
}

TEST(Runtime, SingleRankRunsInline) {
  Runtime rt(Topology(1, 1));
  int calls = 0;
  rt.run([&](Rank& r) {
    ++calls;
    r.phase("only");
    r.barrier();
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(rt.report().phases.back().name, "only");
}

TEST(Runtime, ChargeTimeAddsModeledSeconds) {
  Runtime rt(Topology(2, 2));
  rt.run([](Rank& r) {
    r.phase("wait");
    if (r.id() == 0) r.charge_time(1.5);
  });
  const auto* ph = rt.report().find("wait");
  ASSERT_NE(ph, nullptr);
  EXPECT_GE(ph->comm_max(), 1.5);
  EXPECT_GE(ph->time_s(), 1.5);
}

TEST(Runtime, SpmdHelperReturnsReport) {
  const auto rep = spmd(3, 3, [](Rank& r) { r.phase("x"); });
  EXPECT_EQ(rep.phases.back().name, "x");
}

TEST(Runtime, ZeroCostModelChargesNoTime) {
  Runtime rt(Topology(4, 1), CostModel::zero());
  rt.run([](Rank& r) {
    r.charge_access((r.id() + 1) % 4, 1 << 20);
    EXPECT_EQ(r.stats().comm_time_s, 0.0);
    EXPECT_EQ(r.stats().net_msgs, 1u);  // traffic still counted
  });
}

TEST(PhaseReport, MergeRejectsMismatchedPhases) {
  std::vector<std::vector<PhaseSample>> samples(2);
  samples[0].push_back({"a", 1.0, {}});
  samples[1].push_back({"b", 1.0, {}});
  EXPECT_THROW(merge_phase_samples(samples), std::logic_error);
}

TEST(PhaseReport, TimeIsMaxOverRanksSummedOverPhases) {
  std::vector<std::vector<PhaseSample>> samples(2);
  CommStats c1;
  c1.comm_time_s = 2.0;
  samples[0].push_back({"p1", 1.0, {}});
  samples[0].push_back({"p2", 5.0, {}});
  samples[1].push_back({"p1", 3.0, c1});  // 3 cpu + 2 comm = 5
  samples[1].push_back({"p2", 1.0, {}});
  const auto rep = merge_phase_samples(samples);
  EXPECT_DOUBLE_EQ(rep.phases[0].time_s(), 5.0);
  EXPECT_DOUBLE_EQ(rep.phases[1].time_s(), 5.0);
  EXPECT_DOUBLE_EQ(rep.total_time_s(), 10.0);
  EXPECT_DOUBLE_EQ(rep.phases[0].cpu_min(), 1.0);
  EXPECT_DOUBLE_EQ(rep.phases[0].cpu_max(), 3.0);
  EXPECT_DOUBLE_EQ(rep.phases[0].total_min(), 1.0);
  EXPECT_DOUBLE_EQ(rep.phases[0].total_avg(), 3.0);
}

}  // namespace
