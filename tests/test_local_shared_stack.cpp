#include "dht/local_shared_stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dht/aggregating_store.hpp"

namespace {

using namespace mera::dht;
using namespace mera::pgas;

TEST(LocalSharedStack, ConcurrentBatchesLandDisjointly) {
  const int nranks = 8;
  const std::size_t batches_per_rank = 50, batch = 16;
  Runtime rt(Topology(nranks, 4));
  std::vector<LocalSharedStack<std::uint64_t>> stacks(1);
  stacks[0].allocate(0, nranks * batches_per_rank * batch);

  rt.run([&](Rank& r) {
    std::vector<std::uint64_t> payload(batch);
    for (std::size_t b = 0; b < batches_per_rank; ++b) {
      // Tag every element with (rank, batch, i) so overwrites are detectable.
      for (std::size_t i = 0; i < batch; ++i)
        payload[i] = (static_cast<std::uint64_t>(r.id()) << 32) |
                     (b << 8) | i;
      stacks[0].push_batch(r, payload);
    }
  });

  const auto view = stacks[0].drain_view();
  ASSERT_EQ(view.size(), nranks * batches_per_rank * batch);
  // All tags distinct => no overwritten slots.
  std::vector<std::uint64_t> sorted(view.begin(), view.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LocalSharedStack, BatchesAreContiguous) {
  Runtime rt(Topology(4, 2));
  std::vector<LocalSharedStack<int>> stacks(1);
  stacks[0].allocate(0, 4 * 10);
  rt.run([&](Rank& r) {
    std::vector<int> payload(10, r.id());
    stacks[0].push_batch(r, payload);
  });
  const auto view = stacks[0].drain_view();
  ASSERT_EQ(view.size(), 40u);
  // Each rank's 10 entries occupy one contiguous run.
  for (std::size_t i = 0; i < view.size(); i += 10)
    for (std::size_t j = i; j < i + 10; ++j) EXPECT_EQ(view[j], view[i]);
}

TEST(LocalSharedStack, OverflowThrows) {
  Runtime rt(Topology(1, 1));
  std::vector<LocalSharedStack<int>> stacks(1);
  stacks[0].allocate(0, 5);
  EXPECT_THROW(rt.run([&](Rank& r) {
                 std::vector<int> payload(6, 1);
                 stacks[0].push_batch(r, payload);
               }),
               std::logic_error);
}

TEST(LocalSharedStack, EmptyBatchIsFreeNoop) {
  Runtime rt(Topology(2, 2));
  std::vector<LocalSharedStack<int>> stacks(1);
  stacks[0].allocate(0, 4);
  rt.run([&](Rank& r) {
    stacks[0].push_batch(r, {});
    EXPECT_EQ(r.stats().atomics, 0u);
  });
  EXPECT_EQ(stacks[0].drain_view().size(), 0u);
}

TEST(AggregatingStore, FlushesExactlyAtS) {
  const int nranks = 2;
  Runtime rt(Topology(nranks, 2));
  std::vector<LocalSharedStack<int>> stacks(nranks);
  for (int i = 0; i < nranks; ++i)
    stacks[static_cast<std::size_t>(i)].allocate(i, 1000);

  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    AggregatingStore<int> agg(nranks, /*S=*/10, stacks);
    // 9 entries: nothing flushed yet (still buffered).
    for (int i = 0; i < 9; ++i) agg.push(r, 1, i);
    EXPECT_EQ(r.stats().atomics, 0u);
    EXPECT_EQ(r.stats().remote_msgs(), 0u);
    // 10th entry triggers exactly one atomic + one aggregate message.
    agg.push(r, 1, 9);
    EXPECT_EQ(r.stats().atomics, 1u);
    EXPECT_EQ(r.stats().remote_msgs(), 1u);
    // Partial leftovers only leave on flush_all.
    agg.push(r, 1, 10);
    agg.flush_all(r);
    EXPECT_EQ(r.stats().atomics, 2u);
  });
  EXPECT_EQ(stacks[1].drain_view().size(), 11u);
}

TEST(AggregatingStore, SFoldMessageReduction) {
  // The headline claim of Section III-A: S-fold fewer messages and atomics
  // than one-message-per-entry.
  const int nranks = 4;
  const std::size_t S = 50, per_rank = 1000;
  Runtime rt(Topology(nranks, 2));
  std::vector<LocalSharedStack<std::uint32_t>> stacks(nranks);
  for (int i = 0; i < nranks; ++i)
    stacks[static_cast<std::size_t>(i)].allocate(i, nranks * per_rank);

  std::vector<std::uint64_t> msgs(nranks);
  rt.run([&](Rank& r) {
    AggregatingStore<std::uint32_t> agg(nranks, S, stacks);
    for (std::size_t i = 0; i < per_rank; ++i)
      agg.push(r, static_cast<int>(i % nranks), static_cast<std::uint32_t>(i));
    agg.flush_all(r);
    msgs[static_cast<std::size_t>(r.id())] =
        r.stats().remote_msgs() + r.stats().local_ops;
  });
  for (int rk = 0; rk < nranks; ++rk) {
    // ceil(1000/4 dest / 50) = 5 flushes per destination, 4 destinations.
    EXPECT_LE(msgs[static_cast<std::size_t>(rk)], per_rank / S + nranks);
  }
}

}  // namespace
