#include "seq/packed_seq.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "seq/dna.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::seq;

TEST(PackedSeq, RoundTripSmall) {
  for (const char* s : {"", "A", "C", "G", "T", "ACGT", "GATTACA"}) {
    PackedSeq p{std::string_view(s)};
    EXPECT_EQ(p.to_string(), s);
    EXPECT_EQ(p.size(), std::string(s).size());
  }
}

TEST(PackedSeq, RoundTripAcrossWordBoundaries) {
  std::mt19937_64 rng(1);
  // Lengths straddling the 32-base word boundary and beyond.
  for (std::size_t len : {31u, 32u, 33u, 63u, 64u, 65u, 100u, 1000u}) {
    const std::string s = random_dna(rng, len);
    EXPECT_EQ(PackedSeq(s).to_string(), s) << "len=" << len;
  }
}

TEST(PackedSeq, PackedBytesAre4xSmaller) {
  const std::string s(1024, 'G');
  const PackedSeq p(s);
  // 1024 bases = 32 words = 256 bytes: exactly 4x under the ASCII size.
  EXPECT_EQ(p.packed_bytes(), s.size() / 4);
}

TEST(PackedSeq, CheckedConstructionRejectsN) {
  EXPECT_THROW(PackedSeq::from_string_checked("ACGNT"), std::invalid_argument);
  EXPECT_NO_THROW(PackedSeq::from_string_checked("ACGT"));
}

TEST(PackedSeq, UncheckedConstructionDegradesNToA) {
  const PackedSeq p{std::string_view("ANG")};
  EXPECT_EQ(p.to_string(), "AAG");
}

TEST(PackedSeq, SubseqMatchesStringSubstr) {
  std::mt19937_64 rng(2);
  const std::string s = random_dna(rng, 200);
  const PackedSeq p(s);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t pos = rng() % s.size();
    const std::size_t len = rng() % (s.size() - pos);
    EXPECT_EQ(p.subseq(pos, len).to_string(), s.substr(pos, len));
    EXPECT_EQ(p.to_string(pos, len), s.substr(pos, len));
  }
}

TEST(PackedSeq, SubseqOutOfRangeThrows) {
  const PackedSeq p{std::string_view("ACGT")};
  EXPECT_THROW((void)p.subseq(2, 3), std::out_of_range);
  EXPECT_THROW((void)p.to_string(5, 0), std::out_of_range);
}

TEST(PackedSeq, ReverseComplementMatchesAsciiReference) {
  std::mt19937_64 rng(3);
  for (std::size_t len : {1u, 31u, 32u, 33u, 97u}) {
    const std::string s = random_dna(rng, len);
    EXPECT_EQ(PackedSeq(s).reverse_complement().to_string(),
              reverse_complement(s));
  }
}

TEST(PackedSeq, EqualRangeAlignedFastPathAgreesWithScalar) {
  std::mt19937_64 rng(4);
  const std::string s = random_dna(rng, 256);
  const PackedSeq a(s), b(s);
  // 32-base aligned positions exercise the word-compare fast path.
  EXPECT_TRUE(PackedSeq::equal_range(a, 0, b, 0, 256));
  EXPECT_TRUE(PackedSeq::equal_range(a, 32, b, 32, 224));
  EXPECT_TRUE(PackedSeq::equal_range(a, 32, b, 32, 100));  // ragged tail
}

TEST(PackedSeq, EqualRangeDetectsSingleMismatch) {
  std::mt19937_64 rng(5);
  const std::string s = random_dna(rng, 300);
  for (std::size_t flip : {0u, 1u, 31u, 32u, 150u, 299u}) {
    std::string t = s;
    t[flip] = complement_base(t[flip]);  // guaranteed different base
    const PackedSeq a(s), b(t);
    EXPECT_FALSE(PackedSeq::equal_range(a, 0, b, 0, 300)) << "flip=" << flip;
    EXPECT_EQ(PackedSeq::mismatch_count(a, 0, b, 0, 300), 1u);
  }
}

TEST(PackedSeq, EqualRangeUnalignedOffsets) {
  std::mt19937_64 rng(6);
  const std::string g = random_dna(rng, 500);
  const PackedSeq genome(g);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t pos = rng() % 380;
    const std::size_t len = 1 + rng() % 100;
    const PackedSeq read(g.substr(pos, len));
    EXPECT_TRUE(PackedSeq::equal_range(read, 0, genome, pos, len));
    // Shifted placement should mismatch unless the region is degenerate.
    if (pos + len + 1 <= g.size() &&
        g.substr(pos, len) != g.substr(pos + 1, len)) {
      EXPECT_FALSE(PackedSeq::equal_range(read, 0, genome, pos + 1, len));
    }
  }
}

TEST(PackedSeq, EqualRangeOutOfBoundsIsFalse) {
  const PackedSeq a{std::string_view("ACGT")}, b{std::string_view("ACGT")};
  EXPECT_FALSE(PackedSeq::equal_range(a, 2, b, 0, 3));
  EXPECT_FALSE(PackedSeq::equal_range(a, 0, b, 3, 2));
}

TEST(PackedSeq, FromWordsRoundTrip) {
  std::mt19937_64 rng(8);
  const std::string s = random_dna(rng, 77);
  const PackedSeq p(s);
  std::vector<std::uint64_t> words(p.words().begin(), p.words().end());
  const PackedSeq q = PackedSeq::from_words(std::move(words), 77);
  EXPECT_EQ(q, p);
  EXPECT_EQ(q.to_string(), s);
}

TEST(PackedSeq, FromWordsMasksTailGarbage) {
  // Tail bits beyond size must be zeroed so equality is well-defined.
  std::vector<std::uint64_t> words{~0ull};
  const PackedSeq p = PackedSeq::from_words(std::move(words), 3);
  EXPECT_EQ(p.to_string(), "TTT");
  EXPECT_EQ(p, PackedSeq{std::string_view("TTT")});
}

TEST(PackedSeq, FromWordsTooFewWordsThrows) {
  EXPECT_THROW(PackedSeq::from_words({}, 1), std::invalid_argument);
}

TEST(PackedSeq, PushCodeBuildsIncrementally) {
  PackedSeq p;
  const std::string s = "TGCATGCA";
  for (char c : s) p.push_code(encode_base(c));
  EXPECT_EQ(p.to_string(), s);
  p.clear();
  EXPECT_TRUE(p.empty());
}

}  // namespace
