// Cross-read candidate pooling: the multi-query batch scorer, the
// PooledExtensionQueue, and the session-level pooled extension path.
//
// The central contract: pooling changes WHEN a candidate is scored — never
// WHAT its score is, and never the order results are emitted in. So
//   1. the multi-query BatchSwScorer is bit-identical to the scalar striped
//      reference for every (query, target) pair, on every dispatch tier and
//      under every scoring scheme (including pad-unsafe ones that force the
//      per-pair fallback);
//   2. the queue calls every tag back exactly once with the reference score,
//      whatever the length-class bucketing and flush thresholds do; and
//   3. a pooled session (sw_pooling on) emits byte-identical records, SAM
//      and stats to a per-read session (sw_pooling off), for K in {1,2,4}
//      shards, on every ISA tier, on mixed-length query sets — compared in
//      EMISSION ORDER, so any reordering by the deferred-replay machinery
//      would fail the test.
#include "align/pooled_queue.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "align/batch_sw.hpp"
#include "align/striped_sw.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;
using mera::core::AlignmentRecord;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

std::vector<SwIsa> supported_tiers() {
  std::vector<SwIsa> tiers{SwIsa::kScalar};
  for (SwIsa isa : {SwIsa::kSse2, SwIsa::kAvx2, SwIsa::kAvx512})
    if (isa_supported(isa)) tiers.push_back(isa);
  return tiers;
}

// ---------------------------------------------------------------------------
// Multi-query BatchSwScorer
// ---------------------------------------------------------------------------

class PooledSwTiers : public ::testing::TestWithParam<SwIsa> {};

TEST_P(PooledSwTiers, MultiQueryMatchesScalarReference) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  // Pad-safe (default), zero-mismatch, and pad-UNSAFE (mismatch > 0, which
  // routes mixed-length lane groups through the per-pair fallback) schemes.
  Scoring unsafe;
  unsafe.mismatch = 1;
  Scoring zero;
  zero.mismatch = 0;
  for (const Scoring& sc : {Scoring{}, zero, unsafe}) {
    std::mt19937_64 rng(1031);
    for (int round = 0; round < 4; ++round) {
      BatchSwScorer scorer(sc, isa);
      // Mixed-length queries — different length classes share one scorer
      // here, so heterogeneous lane groups are the norm, not the exception.
      std::vector<std::vector<std::uint8_t>> queries;
      std::vector<std::size_t> qids;
      for (int q = 0; q < 6; ++q) {
        queries.push_back(dna_codes(random_dna(rng, 20 + rng() % 130)));
        qids.push_back(scorer.add_query(
            std::span<const std::uint8_t>(queries.back())));
      }
      std::vector<std::size_t> cand_query;
      std::vector<std::vector<std::uint8_t>> cand_target;
      for (int c = 0; c < 70; ++c) {
        cand_query.push_back(rng() % queries.size());
        cand_target.push_back(dna_codes(random_dna(rng, rng() % 260)));
        scorer.add(qids[cand_query.back()],
                   std::span<const std::uint8_t>(cand_target.back()));
      }
      const auto got = scorer.flush();
      ASSERT_EQ(got.size(), cand_target.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        const auto ref = striped_scalar_score(queries[cand_query[i]],
                                              cand_target[i], sc);
        ASSERT_EQ(got[i].score, ref.score)
            << isa_name(isa) << " round=" << round << " i=" << i
            << " mismatch=" << sc.mismatch;
        ASSERT_EQ(got[i].t_end, ref.t_end)
            << isa_name(isa) << " round=" << round << " i=" << i
            << " mismatch=" << sc.mismatch;
      }
    }
  }
}

TEST_P(PooledSwTiers, RepeatedFlushesReuseRegisteredQueries) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(77);
  const Scoring sc;
  BatchSwScorer scorer(sc, isa);
  const auto q = dna_codes(random_dna(rng, 90));
  const auto qid = scorer.add_query(std::span<const std::uint8_t>(q));
  for (int flush = 0; flush < 3; ++flush) {
    std::vector<std::vector<std::uint8_t>> targets;
    for (int c = 0; c < 9; ++c) {
      targets.push_back(dna_codes(random_dna(rng, 60 + rng() % 120)));
      scorer.add(qid, std::span<const std::uint8_t>(targets.back()));
    }
    const auto got = scorer.flush();
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto ref = striped_scalar_score(q, targets[i], sc);
      ASSERT_EQ(got[i].score, ref.score) << "flush=" << flush << " i=" << i;
      ASSERT_EQ(got[i].t_end, ref.t_end) << "flush=" << flush << " i=" << i;
    }
    EXPECT_EQ(scorer.pending(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, PooledSwTiers,
                         ::testing::ValuesIn(supported_tiers()),
                         [](const auto& info) {
                           return std::string(isa_name(info.param));
                         });

TEST(PooledSw, AddQueryDedupsIdenticalBytes) {
  BatchSwScorer scorer;
  const auto a = dna_codes("ACGTACGTACGT");
  const auto b = dna_codes("ACGTACGTACGT");
  const auto c = dna_codes("TTTTACGTACGT");
  const auto ida = scorer.add_query(std::span<const std::uint8_t>(a));
  const auto idb = scorer.add_query(std::span<const std::uint8_t>(b));
  const auto idc = scorer.add_query(std::span<const std::uint8_t>(c));
  EXPECT_EQ(ida, idb);
  EXPECT_NE(ida, idc);
  EXPECT_EQ(scorer.num_queries(), 2u);
}

// ---------------------------------------------------------------------------
// PooledExtensionQueue
// ---------------------------------------------------------------------------

// Property: whatever the length-class width and flush threshold do to
// bucketing and flush timing, every enqueued tag is called back EXACTLY once
// and its score is the scalar reference score. Randomized over class widths
// that put everything in one bucket (1000), one bucket per length (1), and
// odd in-between splits.
TEST(PooledQueue, EveryTagScoredExactlyOnceAtAnyBucketing) {
  std::mt19937_64 rng(4099);
  for (const std::size_t width : {std::size_t{1}, std::size_t{7},
                                  std::size_t{32}, std::size_t{1000}}) {
    for (const std::size_t flush : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{64}}) {
      PooledQueueConfig cfg;
      cfg.length_class_width = width;
      cfg.flush_lanes = flush;
      std::map<std::uint64_t, StripedResult> got;
      PooledExtensionQueue queue(
          cfg, [&](std::uint64_t tag, const StripedResult& r) {
            ASSERT_TRUE(got.emplace(tag, r).second)
                << "tag " << tag << " scored twice (width=" << width
                << " flush=" << flush << ")";
          });
      std::vector<std::vector<std::uint8_t>> queries;
      std::vector<std::size_t> qids;
      for (int q = 0; q < 8; ++q) {
        queries.push_back(dna_codes(random_dna(rng, 15 + rng() % 140)));
        qids.push_back(queue.add_query(
            std::span<const std::uint8_t>(queries.back())));
      }
      std::vector<std::size_t> cand_query;
      std::vector<std::vector<std::uint8_t>> cand_target;
      for (std::uint64_t tag = 0; tag < 100; ++tag) {
        cand_query.push_back(rng() % queries.size());
        cand_target.push_back(dna_codes(random_dna(rng, 1 + rng() % 220)));
        queue.enqueue(cand_query.back(),
                      std::span<const std::uint8_t>(cand_target.back()), tag);
      }
      queue.drain();
      EXPECT_EQ(queue.pending(), 0u);
      ASSERT_EQ(got.size(), cand_target.size())
          << "width=" << width << " flush=" << flush;
      for (std::uint64_t tag = 0; tag < cand_target.size(); ++tag) {
        const auto ref = striped_scalar_score(queries[cand_query[tag]],
                                              cand_target[tag], Scoring{});
        ASSERT_EQ(got[tag].score, ref.score)
            << "tag=" << tag << " width=" << width << " flush=" << flush;
        ASSERT_EQ(got[tag].t_end, ref.t_end)
            << "tag=" << tag << " width=" << width << " flush=" << flush;
      }
    }
  }
}

TEST(PooledQueue, AutoFlushThresholdIsTheTiersLaneWidth) {
  PooledQueueConfig cfg;  // flush_lanes = 0 = auto
  PooledExtensionQueue queue(cfg, [](std::uint64_t, const StripedResult&) {});
  const std::size_t lanes = isa_lanes8(SwIsa::kAuto);
  EXPECT_EQ(queue.flush_lanes(), lanes > 1 ? lanes : 16u);
}

// ---------------------------------------------------------------------------
// Session-level pooled vs per-read bit-identity
// ---------------------------------------------------------------------------

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

/// Mixed-length query set: reads are trimmed to 5 different lengths so the
/// pooled path spreads them over several length-class buckets.
Workload make_mixed_workload(std::size_t genome_len, double depth,
                             std::uint64_t seed = 7) {
  Workload w;
  mera::seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  mera::seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = 120;
  rp.depth = depth;
  rp.error_rate = 0.01;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  for (std::size_t i = 0; i < w.reads.size(); ++i) {
    const std::size_t len = 60 + (i % 5) * 15;  // 60..120
    w.reads[i].seq.resize(len);
    if (!w.reads[i].qual.empty()) w.reads[i].qual.resize(len);
  }
  return w;
}

mera::core::IndexConfig small_index(int k = 21) {
  mera::core::IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

mera::core::SessionConfig batch_session(SwIsa isa, std::size_t pooling) {
  mera::core::SessionConfig sc;
  sc.seed_cache_capacity = 1u << 14;
  sc.target_cache_bytes = 8u << 20;
  sc.exact_match = false;  // force every candidate through the SW kernel
  sc.extension.kernel = SwKernel::kBatch;
  sc.extension.isa = isa;
  sc.sw_pooling = pooling;
  return sc;
}

void expect_same_stats(const mera::core::PipelineStats& a,
                       const mera::core::PipelineStats& b,
                       const std::string& what) {
  EXPECT_EQ(a.reads_processed, b.reads_processed) << what;
  EXPECT_EQ(a.reads_aligned, b.reads_aligned) << what;
  EXPECT_EQ(a.alignments_reported, b.alignments_reported) << what;
  EXPECT_EQ(a.seed_lookups, b.seed_lookups) << what;
  EXPECT_EQ(a.target_fetches, b.target_fetches) << what;
  EXPECT_EQ(a.sw_calls, b.sw_calls) << what;
  EXPECT_EQ(a.sw_cells, b.sw_cells) << what;
  EXPECT_EQ(a.hits_truncated, b.hits_truncated) << what;
}

std::string sam_of(const mera::core::IndexedReference& ref, Runtime& rt,
                   mera::core::AlignSession& session,
                   const std::vector<SeqRecord>& reads,
                   mera::core::BatchResult& out) {
  std::ostringstream os;
  mera::core::SamStreamSink sam(os, ref);
  out = session.align_batch(rt, reads, sam);
  return os.str();
}

TEST(PooledSession, PooledEqualsPerReadOnEveryTier) {
  const auto w = make_mixed_workload(25'000, 1.2);
  // One reference for every comparison: the index build is SPMD over real
  // threads, so per-seed hit-list order — and therefore candidate discovery
  // order — is only reproducible against the SAME built index. (The repo's
  // other cross-build comparisons sort records for exactly this reason;
  // here the unsorted byte stream is the point.)
  Runtime rt0(Topology(4, 2));
  const auto ref =
      mera::core::IndexedReference::build(rt0, w.contigs, small_index());
  for (const SwIsa isa : supported_tiers()) {
    // Per-read flushing (the pre-pooling behaviour) is the reference.
    Runtime rt1(Topology(4, 2));
    mera::core::AlignSession s1(ref, batch_session(isa, 0));
    mera::core::BatchResult b1;
    const std::string sam1 = sam_of(ref, rt1, s1, w.reads, b1);

    // Pooled, auto threshold AND a deliberately odd explicit threshold —
    // flush timing must never leak into the output.
    for (const std::size_t pooling : {std::size_t{1}, std::size_t{5}}) {
      Runtime rt2(Topology(4, 2));
      mera::core::AlignSession s2(ref, batch_session(isa, pooling));
      mera::core::BatchResult b2;
      const std::string sam2 = sam_of(ref, rt2, s2, w.reads, b2);
      const std::string what = std::string(isa_name(isa)) +
                               " pooling=" + std::to_string(pooling);
      EXPECT_EQ(sam1, sam2) << what;
      expect_same_stats(b1.stats, b2.stats, what);
    }
  }
}

TEST(PooledSession, EmissionOrderIsPreservedNotJustTheRecordSet) {
  // VectorSink::take() returns records in emission order; comparing the
  // vectors UNSORTED proves the pooled replay machinery reproduces the
  // per-read path's exact per-read / per-strand / per-candidate order.
  const auto w = make_mixed_workload(20'000, 1.0, /*seed=*/21);
  // Shared index: candidate discovery order is only defined relative to one
  // concrete build (the SPMD index build makes hit-list order run-specific).
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  const auto ref =
      mera::core::IndexedReference::build(rt1, w.contigs, small_index());
  mera::core::AlignSession s1(ref, batch_session(SwIsa::kAuto, 0));
  mera::core::AlignSession s2(ref, batch_session(SwIsa::kAuto, 1));
  mera::core::VectorSink sink1(rt1.nranks()), sink2(rt2.nranks());
  const auto r1 = s1.align_batch(rt1, w.reads, sink1);
  const auto r2 = s2.align_batch(rt2, w.reads, sink2);
  const auto v1 = sink1.take();
  const auto v2 = sink2.take();
  ASSERT_GT(v1.size(), 0u);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) EXPECT_EQ(v1[i], v2[i]) << i;
  expect_same_stats(r1.stats, r2.stats, "emission order");
}

TEST(PooledSession, PooledEqualsPerReadAcrossShardCounts) {
  const auto w = make_mixed_workload(25'000, 1.2, /*seed=*/31);
  for (const int shards : {1, 2, 4}) {
    // One sharded reference per K, shared by the per-read and pooled runs:
    // at K=1 records flow through in discovery order, which is only
    // reproducible against the same built index.
    Runtime rt0(Topology(4, 2));
    mera::shard::ShardPlanOptions popt;
    popt.shards = shards;
    popt.k = small_index().k;
    const auto ref = mera::shard::ShardedReference::build(
        rt0, w.contigs, plan_shards(w.contigs, popt), small_index());
    std::string sam_perread;
    mera::core::PipelineStats stats_perread;
    for (const std::size_t pooling : {std::size_t{0}, std::size_t{1}}) {
      Runtime rt(Topology(4, 2));
      mera::core::SessionConfig scfg = batch_session(SwIsa::kAuto, pooling);
      scfg.max_hits_per_seed = 4096;  // exhaustive: shard-composable regime
      mera::shard::ShardedAlignSession session(ref, scfg);
      std::ostringstream os;
      mera::core::SamStreamSink sam(os, ref.sam_targets(), rt.nranks());
      const auto res = session.align_batch(rt, w.reads, sam);
      if (pooling == 0) {
        sam_perread = os.str();
        stats_perread = res.stats;
        ASSERT_FALSE(sam_perread.empty());
      } else {
        EXPECT_EQ(sam_perread, os.str()) << "K=" << shards;
        expect_same_stats(stats_perread, res.stats,
                          "K=" + std::to_string(shards));
      }
    }
  }
}

TEST(PooledSession, PoolingRaisesLaneOccupancyOnSimdTiers) {
  if (isa_lanes8(SwIsa::kAuto) <= 1)
    GTEST_SKIP() << "scalar-only host: no lanes to fill";
  const auto w = make_mixed_workload(25'000, 1.2, /*seed=*/41);
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  const auto ref =
      mera::core::IndexedReference::build(rt1, w.contigs, small_index());
  mera::core::AlignSession s1(ref, batch_session(SwIsa::kAuto, 0));
  mera::core::AlignSession s2(ref, batch_session(SwIsa::kAuto, 1));
  mera::core::CountingSink c1, c2;
  const auto r1 = s1.align_batch(rt1, w.reads, c1);
  const auto r2 = s2.align_batch(rt2, w.reads, c2);
  // The per-read path must have run SIMD sweeps for the comparison to mean
  // anything; the pooled path must then fill lanes strictly better.
  ASSERT_GT(r1.lane_stats.groups, 0u);
  ASSERT_GT(r2.lane_stats.groups, 0u);
  EXPECT_GT(r2.lane_stats.mean_occupancy(), r1.lane_stats.mean_occupancy());
}

}  // namespace
