#include "dht/seed_index.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "seq/kmer.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::dht;
using mera::pgas::CostModel;
using mera::pgas::Rank;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::Kmer;

/// Ground truth over `seqs` (each sequence treated as one fragment, its
/// global id = position in the vector), via the shared testutil builder.
std::multimap<std::string, SeedHit> ground_truth(
    const std::vector<std::string>& seqs, int k) {
  return mera::testutil::seed_ground_truth<SeedHit>(
      seqs, k, [](std::uint32_t sid, std::size_t off) {
        return SeedHit{sid, sid, static_cast<std::uint32_t>(off)};
      });
}

void build_index(Runtime& rt, SeedIndex& index,
                 const std::vector<std::string>& seqs, int k) {
  rt.run([&](Rank& r) {
    // Block-partition the sequences over ranks.
    const std::size_t n = seqs.size();
    const auto me = static_cast<std::size_t>(r.id());
    const auto p = static_cast<std::size_t>(r.nranks());
    const std::size_t lo = n * me / p, hi = n * (me + 1) / p;
    for (std::size_t s = lo; s < hi; ++s)
      mera::seq::for_each_seed(std::string_view(seqs[s]), k,
                               [&](std::size_t, const Kmer& m) {
                                 index.count_seed(r, m);
                               });
    index.finish_count(r);
    for (std::size_t s = lo; s < hi; ++s)
      mera::seq::for_each_seed(
          std::string_view(seqs[s]), k, [&](std::size_t off, const Kmer& m) {
            index.insert(r, m,
                         SeedHit{static_cast<std::uint32_t>(s),
                                 static_cast<std::uint32_t>(s),
                                 static_cast<std::uint32_t>(off)});
          });
    index.finish_insert(r);
  });
}

class SeedIndexModes : public ::testing::TestWithParam<bool> {};

TEST_P(SeedIndexModes, LookupReturnsExactlyTheInsertedHits) {
  const bool aggregating = GetParam();
  std::mt19937_64 rng(21);
  std::vector<std::string> seqs;
  for (int i = 0; i < 12; ++i) seqs.push_back(random_dna(rng, 400));
  // Force duplicates: copy a chunk of seq 0 into seq 1.
  seqs[1].replace(10, 100, seqs[0].substr(50, 100));
  const int k = 21;

  Runtime rt(Topology(6, 3));
  SeedIndex index(rt.topo(), {k, aggregating, /*buffer_S=*/16});
  build_index(rt, index, seqs, k);

  const auto truth = ground_truth(seqs, k);
  EXPECT_EQ(index.total_entries(), truth.size());

  // Every rank can look up every seed and gets exactly the true hit set.
  rt.run([&](Rank& r) {
    if (r.id() != 0 && r.id() != 5) return;
    std::string last_key;
    for (auto it = truth.begin(); it != truth.end(); ++it) {
      if (it->first == last_key) continue;  // one query per distinct seed
      last_key = it->first;
      const auto m = Kmer::from_ascii(it->first);
      std::vector<SeedHit> hits;
      const std::size_t total = index.lookup(r, *m, 1000, hits);
      const auto range = truth.equal_range(it->first);
      std::vector<SeedHit> expect;
      for (auto e = range.first; e != range.second; ++e)
        expect.push_back(e->second);
      ASSERT_EQ(total, expect.size()) << it->first;
      ASSERT_EQ(hits.size(), expect.size());
      // Order-insensitive comparison.
      for (const auto& h : expect)
        EXPECT_NE(std::find(hits.begin(), hits.end(), h), hits.end());
    }
  });
}

TEST_P(SeedIndexModes, AbsentSeedReturnsZero) {
  const bool aggregating = GetParam();
  Runtime rt(Topology(4, 2));
  SeedIndex index(rt.topo(), {5, aggregating, 8});
  std::vector<std::string> seqs{"ACGTACGTAC"};
  build_index(rt, index, seqs, 5);
  rt.run([&](Rank& r) {
    std::vector<SeedHit> hits;
    EXPECT_EQ(index.lookup(r, *Kmer::from_ascii("TTTTT"), 10, hits), 0u);
    EXPECT_TRUE(hits.empty());
  });
}

TEST_P(SeedIndexModes, MaxHitsTruncatesButReportsTotal) {
  const bool aggregating = GetParam();
  Runtime rt(Topology(4, 2));
  const int k = 7;
  // 20 copies of the same sequence => every seed occurs 20 times.
  std::vector<std::string> seqs(20, "ACGTACGTACGTACG");
  SeedIndex index(rt.topo(), {k, aggregating, 4});
  build_index(rt, index, seqs, k);
  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    std::vector<SeedHit> hits;
    const std::size_t total =
        index.lookup(r, *Kmer::from_ascii("ACGTACG"), 5, hits);
    EXPECT_EQ(total, 60u);  // seed occurs at pos 0, 4 and 8 in each copy
    EXPECT_EQ(hits.size(), 5u);
  });
}

TEST_P(SeedIndexModes, DuplicateHitsAreMarkedNonUnique) {
  const bool aggregating = GetParam();
  Runtime rt(Topology(3, 3));
  const int k = 9;
  std::mt19937_64 rng(22);
  std::vector<std::string> seqs{random_dna(rng, 120), random_dna(rng, 120)};
  seqs.push_back(seqs[0].substr(0, 60));  // seq 2 duplicates half of seq 0
  SeedIndex index(rt.topo(), {k, aggregating, 8});
  build_index(rt, index, seqs, k);

  const auto truth = ground_truth(seqs, k);
  std::map<std::string, std::size_t> counts;
  for (const auto& [key, hit] : truth) ++counts[key];

  // Gather all duplicate-flagged fragment ids across ranks.
  std::vector<std::uint32_t> dup_frags;
  std::mutex mu;
  rt.run([&](Rank& r) {
    index.for_each_local_duplicate_hit(r, [&](const SeedHit& h) {
      const std::scoped_lock lk(mu);
      dup_frags.push_back(h.fragment_id);
    });
  });

  std::size_t expected_dup_entries = 0;
  for (const auto& [key, c] : counts)
    if (c > 1) expected_dup_entries += c;
  EXPECT_EQ(dup_frags.size(), expected_dup_entries);
  // Fragment 1 (unrelated random sequence) should not appear.
  for (auto f : dup_frags) EXPECT_NE(f, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothConstructionModes, SeedIndexModes,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "aggregating" : "naive";
                         });

TEST(SeedIndex, AggregatingModeSendsFarFewerMessages) {
  std::mt19937_64 rng(23);
  std::vector<std::string> seqs;
  for (int i = 0; i < 8; ++i) seqs.push_back(random_dna(rng, 600));
  const int k = 15;

  auto traffic = [&](bool aggregating) {
    Runtime rt(Topology(8, 4));
    SeedIndex index(rt.topo(), {k, aggregating, 100});
    build_index(rt, index, seqs, k);
    std::uint64_t msgs = 0, atomics = 0;
    for (const auto& ph : rt.report().phases) {
      msgs += ph.traffic.remote_msgs();
      atomics += ph.traffic.atomics;
    }
    return std::pair{msgs, atomics};
  };

  const auto [naive_msgs, naive_atomics] = traffic(false);
  const auto [agg_msgs, agg_atomics] = traffic(true);
  // ~S-fold reduction (S=100; partial flushes erode it slightly).
  EXPECT_GT(naive_msgs, 20 * agg_msgs);
  EXPECT_GT(naive_atomics, 20 * agg_atomics);
}

TEST(SeedIndex, DistinctSeedBalanceAcrossRanks) {
  // djb2 seed-to-processor balance (Section VI-C1).
  std::mt19937_64 rng(24);
  std::vector<std::string> seqs;
  for (int i = 0; i < 16; ++i) seqs.push_back(random_dna(rng, 2000));
  const int k = 31;
  Runtime rt(Topology(8, 4));
  SeedIndex index(rt.topo(), {k, true, 64});
  build_index(rt, index, seqs, k);

  std::size_t total = 0;
  for (int r = 0; r < 8; ++r) total += index.local_distinct_seeds(r);
  const double mean = static_cast<double>(total) / 8.0;
  for (int r = 0; r < 8; ++r) {
    EXPECT_GT(index.local_distinct_seeds(r), mean * 0.9) << "rank " << r;
    EXPECT_LT(index.local_distinct_seeds(r), mean * 1.1) << "rank " << r;
  }
}

TEST(SeedIndex, RejectsBadOptions) {
  const Topology topo(2, 2);
  EXPECT_THROW(SeedIndex(topo, {0, true, 10}), std::invalid_argument);
  EXPECT_THROW(SeedIndex(topo, {65, true, 10}), std::invalid_argument);
  EXPECT_THROW(SeedIndex(topo, {31, true, 0}), std::invalid_argument);
}

TEST(SeedIndex, SingleRankDegenerateCase) {
  Runtime rt(Topology(1, 1));
  SeedIndex index(rt.topo(), {11, true, 1000});
  std::vector<std::string> seqs{"ACGTACGTACGTACGTACGT"};
  build_index(rt, index, seqs, 11);
  EXPECT_EQ(index.total_entries(), 10u);
  rt.run([&](Rank& r) {
    std::vector<SeedHit> hits;
    // "ACGTACGTACG" occurs at offsets 0, 4 and 8 of the periodic sequence.
    EXPECT_EQ(index.lookup(r, *Kmer::from_ascii("ACGTACGTACG"), 10, hits), 3u);
  });
}

}  // namespace
