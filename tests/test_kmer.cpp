#include "seq/kmer.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>

#include "seq/packed_seq.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::seq;

TEST(Kmer, FromAsciiRoundTrip) {
  for (const char* s : {"A", "ACGT", "GATTACA",
                        "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACG"}) {
    const auto m = Kmer::from_ascii(s);
    ASSERT_TRUE(m.has_value()) << s;
    EXPECT_EQ(m->to_string(), s);
    EXPECT_EQ(m->k(), static_cast<int>(std::string(s).size()));
  }
}

TEST(Kmer, FromAsciiRejectsInvalid) {
  EXPECT_FALSE(Kmer::from_ascii("ACGN").has_value());
  EXPECT_FALSE(Kmer::from_ascii("").has_value());
  EXPECT_FALSE(Kmer::from_ascii(std::string(65, 'A')).has_value());
}

TEST(Kmer, MaxLength64RoundTrip) {
  std::mt19937_64 rng(11);
  const std::string s = random_dna(rng, 64);
  const auto m = Kmer::from_ascii(s);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), s);
}

TEST(Kmer, FromPackedAgreesWithFromAscii) {
  std::mt19937_64 rng(12);
  const std::string s = random_dna(rng, 120);
  const PackedSeq p(s);
  for (int k : {1, 15, 31, 32, 33, 51, 64}) {
    for (std::size_t pos : {0u, 1u, 17u, 50u}) {
      const auto a = Kmer::from_ascii(s.substr(pos, static_cast<std::size_t>(k)));
      const Kmer b = Kmer::from_packed(p, pos, k);
      ASSERT_TRUE(a.has_value());
      EXPECT_EQ(*a, b) << "k=" << k << " pos=" << pos;
    }
  }
}

TEST(Kmer, RollMatchesRebuildEveryWindow) {
  std::mt19937_64 rng(13);
  const std::string s = random_dna(rng, 300);
  for (int k : {3, 31, 32, 33, 51, 64}) {
    Kmer m = *Kmer::from_ascii(s.substr(0, static_cast<std::size_t>(k)));
    for (std::size_t start = 1;
         start + static_cast<std::size_t>(k) <= s.size(); ++start) {
      m.roll(encode_base(s[start + static_cast<std::size_t>(k) - 1]));
      const auto rebuilt =
          Kmer::from_ascii(s.substr(start, static_cast<std::size_t>(k)));
      ASSERT_EQ(m, *rebuilt) << "k=" << k << " start=" << start;
    }
  }
}

TEST(Kmer, ReverseComplementInvolution) {
  std::mt19937_64 rng(14);
  for (int k : {1, 21, 51, 64}) {
    const std::string s = random_dna(rng, static_cast<std::size_t>(k));
    const Kmer m = *Kmer::from_ascii(s);
    EXPECT_EQ(m.reverse_complement().reverse_complement(), m);
    EXPECT_EQ(m.reverse_complement().to_string(), reverse_complement(s));
  }
}

TEST(Kmer, EqualityDistinguishesKAndContent) {
  const Kmer a = *Kmer::from_ascii("ACGT");
  const Kmer b = *Kmer::from_ascii("ACGT");
  const Kmer c = *Kmer::from_ascii("ACGTA");
  const Kmer d = *Kmer::from_ascii("TCGA");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(Kmer, Djb2IsDeterministicAndSpreads) {
  std::mt19937_64 rng(15);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 2000; ++i) {
    const Kmer m = *Kmer::from_ascii(random_dna(rng, 51));
    EXPECT_EQ(m.djb2(), m.djb2());
    hashes.insert(m.djb2());
  }
  // All-distinct is overwhelmingly likely for a decent hash.
  EXPECT_GT(hashes.size(), 1990u);
}

TEST(Kmer, Djb2BalancesSeedsAcrossRanks) {
  // The paper attributes near-perfect distinct-seed balance to djb2
  // (Section VI-C1). Check the spread over a simulated 16-rank machine.
  std::mt19937_64 rng(16);
  const int nranks = 16;
  std::map<int, int> per_rank;
  const int n = 20000;
  const std::string genome = random_dna(rng, 20000 + 50);
  for (int i = 0; i < n; ++i) {
    const Kmer m =
        *Kmer::from_ascii(std::string_view(genome).substr(
            static_cast<std::size_t>(i), 51));
    ++per_rank[static_cast<int>(m.djb2() % nranks)];
  }
  const double mean = static_cast<double>(n) / nranks;
  for (const auto& [rank, count] : per_rank) {
    EXPECT_GT(count, mean * 0.85) << "rank " << rank;
    EXPECT_LT(count, mean * 1.15) << "rank " << rank;
  }
}

TEST(Kmer, ForEachSeedYieldsAllWindows) {
  std::mt19937_64 rng(17);
  const std::string s = random_dna(rng, 100);
  const int k = 21;
  std::size_t expected = 0;
  std::vector<std::pair<std::size_t, std::string>> got;
  for_each_seed(std::string_view(s), k,
                [&](std::size_t off, const Kmer& m) {
                  got.emplace_back(off, m.to_string());
                });
  expected = s.size() - static_cast<std::size_t>(k) + 1;
  ASSERT_EQ(got.size(), expected);
  for (const auto& [off, str] : got)
    EXPECT_EQ(str, s.substr(off, static_cast<std::size_t>(k)));
}

TEST(Kmer, ForEachSeedSkipsWindowsContainingN) {
  std::string s = "ACGTACGTACGTACGTACGT";  // 20 bases
  s[7] = 'N';
  const int k = 5;
  std::vector<std::size_t> offsets;
  for_each_seed(std::string_view(s), k,
                [&](std::size_t off, const Kmer&) { offsets.push_back(off); });
  // Windows [3..7] overlap position 7 and must be skipped.
  for (std::size_t off : offsets)
    EXPECT_TRUE(off + 5 <= 7 || off >= 8) << "off=" << off;
  // Expected: offsets 0..2 and 8..15 -> 3 + 8 = 11 windows.
  EXPECT_EQ(offsets.size(), 11u);
}

TEST(Kmer, ForEachSeedRollingEqualsRebuilt) {
  std::mt19937_64 rng(18);
  std::string s = random_dna(rng, 400);
  // Sprinkle Ns to force rebuild-after-bad-base transitions.
  for (int i = 0; i < 10; ++i) s[rng() % s.size()] = 'N';
  const int k = 17;
  for_each_seed(std::string_view(s), k, [&](std::size_t off, const Kmer& m) {
    const auto rebuilt =
        Kmer::from_ascii(s.substr(off, static_cast<std::size_t>(k)));
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(m, *rebuilt) << "off=" << off;
  });
}

TEST(Kmer, ForEachSeedOnPackedSeqAgreesWithAscii) {
  std::mt19937_64 rng(19);
  const std::string s = random_dna(rng, 200);
  const PackedSeq p(s);
  const int k = 33;
  std::vector<Kmer> from_ascii, from_packed;
  for_each_seed(std::string_view(s), k,
                [&](std::size_t, const Kmer& m) { from_ascii.push_back(m); });
  for_each_seed(p, k,
                [&](std::size_t, const Kmer& m) { from_packed.push_back(m); });
  ASSERT_EQ(from_ascii.size(), from_packed.size());
  for (std::size_t i = 0; i < from_ascii.size(); ++i)
    EXPECT_EQ(from_ascii[i], from_packed[i]);
}

TEST(Kmer, ForEachSeedEdgeCases) {
  int count = 0;
  const auto counter = [&](std::size_t, const Kmer&) { ++count; };
  for_each_seed(std::string_view("ACG"), 5, counter);  // shorter than k
  EXPECT_EQ(count, 0);
  for_each_seed(std::string_view("ACGTA"), 5, counter);  // exactly k
  EXPECT_EQ(count, 1);
  count = 0;
  for_each_seed(std::string_view("NNNNN"), 3, counter);  // all invalid
  EXPECT_EQ(count, 0);
}

}  // namespace
