#include "seq/seqdb.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <random>

#include "seq/fastq.hpp"

namespace {

using namespace mera::seq;

class SeqDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mera_seqdb_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

std::vector<SeqRecord> sample_reads(int n, std::uint64_t seed,
                                    double n_rate = 0.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0, 1);
  std::vector<SeqRecord> recs;
  for (int i = 0; i < n; ++i) {
    SeqRecord r;
    r.name = "read/" + std::to_string(i);
    r.seq.resize(50 + rng() % 150);
    for (auto& c : r.seq)
      c = unit(rng) < n_rate ? 'N' : "ACGT"[rng() & 3u];
    r.qual.resize(r.seq.size());
    for (auto& q : r.qual) q = static_cast<char>('!' + 1 + rng() % 40);
    recs.push_back(std::move(r));
  }
  return recs;
}

TEST_F(SeqDBTest, RoundTripWithoutQuality) {
  const auto recs = sample_reads(40, 1);
  write_seqdb(path("a.sdb"), recs, /*store_quality=*/false);
  SeqDBReader db(path("a.sdb"));
  ASSERT_EQ(db.size(), recs.size());
  EXPECT_FALSE(db.has_quality());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto rec = db.read(i);
    EXPECT_EQ(rec.name, recs[i].name);
    EXPECT_EQ(rec.seq, recs[i].seq);
  }
}

TEST_F(SeqDBTest, RoundTripWithQualityIsLossless) {
  const auto recs = sample_reads(25, 2);
  write_seqdb(path("q.sdb"), recs, /*store_quality=*/true);
  SeqDBReader db(path("q.sdb"));
  ASSERT_TRUE(db.has_quality());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto rec = db.read(i);
    EXPECT_EQ(rec.qual, recs[i].qual);
    EXPECT_EQ(rec.seq, recs[i].seq);
  }
}

TEST_F(SeqDBTest, NBasesSurviveRoundTrip) {
  const auto recs = sample_reads(30, 3, /*n_rate=*/0.05);
  write_seqdb(path("n.sdb"), recs, true);
  SeqDBReader db(path("n.sdb"));
  for (std::size_t i = 0; i < recs.size(); ++i)
    EXPECT_EQ(db.read(i).seq, recs[i].seq) << "record " << i;
}

TEST_F(SeqDBTest, PackedReadExposesNPositions) {
  std::vector<SeqRecord> recs{{"r", "ACNNGT", "IIIIII"}};
  write_seqdb(path("p.sdb"), recs, false);
  SeqDBReader db(path("p.sdb"));
  const auto pr = db.read_packed(0);
  EXPECT_EQ(pr.seq.to_string(), "ACAAGT");  // Ns packed as A
  ASSERT_EQ(pr.n_pos.size(), 2u);
  EXPECT_EQ(pr.n_pos[0], 2u);
  EXPECT_EQ(pr.n_pos[1], 3u);
}

TEST_F(SeqDBTest, RandomAccessIsOrderIndependent) {
  const auto recs = sample_reads(50, 4);
  write_seqdb(path("r.sdb"), recs, false);
  SeqDBReader db(path("r.sdb"));
  // Read backwards, then spot-check forward.
  for (std::size_t i = recs.size(); i-- > 0;)
    EXPECT_EQ(db.read(i).name, recs[i].name);
  EXPECT_EQ(db.read(7).seq, recs[7].seq);
}

TEST_F(SeqDBTest, PartitionsAreBalancedAndComplete) {
  const auto recs = sample_reads(101, 5);
  write_seqdb(path("b.sdb"), recs, false);
  SeqDBReader db(path("b.sdb"));
  for (int nranks : {1, 2, 7, 13, 101, 200}) {
    std::size_t covered = 0;
    std::size_t max_part = 0, min_part = recs.size();
    for (int r = 0; r < nranks; ++r) {
      const auto [lo, hi] = db.partition(r, nranks);
      ASSERT_LE(lo, hi);
      covered += hi - lo;
      max_part = std::max(max_part, hi - lo);
      min_part = std::min(min_part, hi - lo);
      if (r > 0) {
        EXPECT_EQ(db.partition(r - 1, nranks).second, lo) << "gap/overlap";
      }
    }
    EXPECT_EQ(covered, recs.size()) << "nranks=" << nranks;
    EXPECT_LE(max_part - min_part, 1u) << "nranks=" << nranks;
  }
}

TEST_F(SeqDBTest, FastqConversionPreservesEverything) {
  const auto recs = sample_reads(64, 6);
  // Avoid '@'/'+' leading quality chars that stress the FASTQ heuristic.
  auto safe = recs;
  for (auto& r : safe)
    for (auto& q : r.qual)
      if (q == '@' || q == '+') q = 'I';
  write_fastq(path("in.fq"), safe);
  fastq_to_seqdb(path("in.fq"), path("out.sdb"));
  SeqDBReader db(path("out.sdb"));
  ASSERT_EQ(db.size(), safe.size());
  for (std::size_t i = 0; i < safe.size(); ++i) {
    const auto rec = db.read(i);
    EXPECT_EQ(rec.name, safe[i].name);
    EXPECT_EQ(rec.seq, safe[i].seq);
    EXPECT_EQ(rec.qual, safe[i].qual);
  }
}

TEST_F(SeqDBTest, CompressionBeatsFastqSize) {
  // The paper quotes SeqDB at ~40-50% of FASTQ; verify we are in that range
  // for quality-less storage and below 100% with qualities.
  auto recs = sample_reads(200, 7);
  for (auto& r : recs) r.seq.resize(101, 'A'), r.qual.resize(101, 'I');
  write_fastq(path("c.fq"), recs);
  write_seqdb(path("c_noq.sdb"), recs, false);
  write_seqdb(path("c_q.sdb"), recs, true);
  const auto fq = std::filesystem::file_size(path("c.fq"));
  const auto noq = std::filesystem::file_size(path("c_noq.sdb"));
  const auto q = std::filesystem::file_size(path("c_q.sdb"));
  EXPECT_LT(noq, fq / 2);
  EXPECT_LT(q, fq);
}

TEST_F(SeqDBTest, BadMagicRejected) {
  std::ofstream out(path("bad.sdb"), std::ios::binary);
  out << "NOTASEQDBFILE.................";
  out.close();
  EXPECT_THROW(SeqDBReader{path("bad.sdb")}, std::runtime_error);
}

TEST_F(SeqDBTest, OutOfRangeIndexThrows) {
  write_seqdb(path("s.sdb"), sample_reads(3, 8), false);
  SeqDBReader db(path("s.sdb"));
  EXPECT_THROW((void)db.read_packed(3), std::out_of_range);
}

TEST_F(SeqDBTest, QualityLengthMismatchRejectedAtWrite) {
  SeqDBWriter w(path("m.sdb"), true);
  EXPECT_THROW(w.add({"r", "ACGT", "II"}), std::invalid_argument);
}

TEST_F(SeqDBTest, EmptyDatabase) {
  write_seqdb(path("e.sdb"), {}, false);
  SeqDBReader db(path("e.sdb"));
  EXPECT_EQ(db.size(), 0u);
  const auto [lo, hi] = db.partition(0, 4);
  EXPECT_EQ(lo, hi);
}

}  // namespace
