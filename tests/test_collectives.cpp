#include "pgas/collectives.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace mera::pgas;

TEST(Collectives, AllReduceSum) {
  Runtime rt(Topology(8, 4));
  CollectiveSpace<std::uint64_t> cs(8);
  std::vector<std::uint64_t> results(8);
  rt.run([&](Rank& r) {
    results[static_cast<std::size_t>(r.id())] =
        cs.all_reduce_sum(r, static_cast<std::uint64_t>(r.id() + 1));
  });
  for (auto v : results) EXPECT_EQ(v, 36u);  // 1+2+...+8
}

TEST(Collectives, AllReduceMax) {
  Runtime rt(Topology(5, 5));
  CollectiveSpace<int> cs(5);
  std::vector<int> results(5);
  rt.run([&](Rank& r) {
    const int mine = r.id() == 3 ? 100 : r.id();
    results[static_cast<std::size_t>(r.id())] = cs.all_reduce_max(r, mine);
  });
  for (int v : results) EXPECT_EQ(v, 100);
}

TEST(Collectives, ExclusiveScan) {
  Runtime rt(Topology(6, 3));
  CollectiveSpace<std::uint64_t> cs(6);
  std::vector<std::uint64_t> results(6);
  rt.run([&](Rank& r) {
    // Rank r contributes 10*(r+1); prefix of rank r = sum of earlier ranks.
    results[static_cast<std::size_t>(r.id())] =
        cs.exclusive_scan(r, static_cast<std::uint64_t>(10 * (r.id() + 1)));
  });
  std::uint64_t expect = 0;
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expect) << "rank " << r;
    expect += static_cast<std::uint64_t>(10 * (r + 1));
  }
}

TEST(Collectives, Broadcast) {
  Runtime rt(Topology(4, 2));
  CollectiveSpace<double> cs(4);
  std::vector<double> results(4);
  rt.run([&](Rank& r) {
    const double mine = r.id() == 2 ? 3.25 : -1.0;
    results[static_cast<std::size_t>(r.id())] = cs.broadcast(r, mine, 2);
  });
  for (double v : results) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(Collectives, AllGather) {
  Runtime rt(Topology(7, 7));
  CollectiveSpace<int> cs(7);
  std::vector<std::vector<int>> results(7);
  rt.run([&](Rank& r) {
    results[static_cast<std::size_t>(r.id())] = cs.all_gather(r, r.id() * 2);
  });
  for (const auto& v : results) {
    ASSERT_EQ(v.size(), 7u);
    for (int i = 0; i < 7; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST(Collectives, ChargesCommunication) {
  Runtime rt(Topology(4, 1));  // every rank on its own node
  CollectiveSpace<int> cs(4);
  rt.run([&](Rank& r) {
    (void)cs.all_reduce_sum(r, 1);
    if (r.id() != 0) {
      // Non-root: one contribute put + one result get, both off-node.
      EXPECT_GE(r.stats().net_msgs, 2u);
      EXPECT_GT(r.stats().comm_time_s, 0.0);
    }
  });
}

TEST(Collectives, ReusableAcrossCalls) {
  Runtime rt(Topology(3, 3));
  CollectiveSpace<int> cs(3);
  std::vector<int> sums(3), scans(3);
  rt.run([&](Rank& r) {
    const auto me = static_cast<std::size_t>(r.id());
    sums[me] = cs.all_reduce_sum(r, 1);
    scans[me] = cs.exclusive_scan(r, 5);
    sums[me] += cs.all_reduce_sum(r, 2);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], 3 + 6);
    EXPECT_EQ(scans[static_cast<std::size_t>(r)], 5 * r);
  }
}

}  // namespace
