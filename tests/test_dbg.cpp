#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>

#include "dbg/contig_builder.hpp"
#include "dbg/kmer_spectrum.hpp"
#include "seq/dna.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera;
using dbg::KmerSpectrum;
using pgas::Rank;
using pgas::Runtime;
using pgas::Topology;

void build_spectrum(Runtime& rt, KmerSpectrum& sp,
                    const std::vector<std::string>& reads) {
  rt.run([&](Rank& r) {
    const std::size_t n = reads.size();
    const auto me = static_cast<std::size_t>(r.id());
    const auto p = static_cast<std::size_t>(r.nranks());
    const std::size_t lo = n * me / p, hi = n * (me + 1) / p;
    for (std::size_t i = lo; i < hi; ++i) sp.count_read(r, reads[i]);
    sp.finish_count(r);
    for (std::size_t i = lo; i < hi; ++i) sp.insert_read(r, reads[i]);
    sp.finish_insert(r);
  });
}

/// Brute-force canonical k-mer counts for verification.
std::map<std::string, int> brute_counts(const std::vector<std::string>& reads,
                                        int k) {
  std::map<std::string, int> counts;
  for (const auto& read : reads)
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= read.size();
         ++i) {
      const std::string f = read.substr(i, static_cast<std::size_t>(k));
      if (!seq::is_valid_dna(f)) continue;
      const std::string rc = seq::reverse_complement(f);
      ++counts[std::min(f, rc)];
    }
  return counts;
}

TEST(KmerSpectrum, CountsMatchBruteForce) {
  std::mt19937_64 rng(101);
  std::vector<std::string> reads;
  for (int i = 0; i < 50; ++i) {
    std::string s(60, 'A');
    for (auto& c : s) c = "ACGT"[rng() & 3u];
    reads.push_back(std::move(s));
  }
  reads.push_back(reads[0]);  // guaranteed duplicates

  const int k = 15;
  Runtime rt(Topology(4, 2));
  KmerSpectrum sp(rt.topo(), {k, 32, true});
  build_spectrum(rt, sp, reads);

  const auto truth = brute_counts(reads, k);
  EXPECT_EQ(sp.total_distinct(), truth.size());
  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    for (const auto& [kmer_str, count] : truth) {
      const auto m = seq::Kmer::from_ascii(kmer_str);
      const auto* info = sp.lookup(r, *m);
      ASSERT_NE(info, nullptr) << kmer_str;
      EXPECT_EQ(info->count, static_cast<std::uint32_t>(count)) << kmer_str;
    }
  });
}

TEST(KmerSpectrum, ExtensionTalliesFromSingleRead) {
  // Read ACGTAC, k=4: canonical forms and their neighbours are known.
  const std::vector<std::string> reads{"ACGTAC"};
  const int k = 5;
  Runtime rt(Topology(2, 2));
  KmerSpectrum sp(rt.topo(), {k, 8, true});
  build_spectrum(rt, sp, reads);

  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    // Window "ACGTA" (canonical: ACGTA vs TACGT -> ACGTA), right neighbour C,
    // no left.
    const auto m = seq::Kmer::from_ascii("ACGTA");
    const auto* info = sp.lookup(r, *m);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->count, 1u);
    EXPECT_EQ(info->left[4], 1u);                       // read start
    EXPECT_EQ(info->right[seq::encode_base('C')], 1u);  // followed by C
  });
}

TEST(KmerSpectrum, CanonicalizationMergesStrands) {
  // The same locus sequenced from both strands lands on one canonical key.
  const std::string fwd = "ACGGTTCAGGCAT";
  const std::vector<std::string> reads{fwd, seq::reverse_complement(fwd)};
  const int k = 7;
  Runtime rt(Topology(2, 2));
  KmerSpectrum sp(rt.topo(), {k, 8, true});
  build_spectrum(rt, sp, reads);
  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    seq::for_each_seed(std::string_view(fwd), k,
                       [&](std::size_t, const seq::Kmer& m) {
                         const seq::Kmer rc = m.reverse_complement();
                         const seq::Kmer canon = rc < m ? rc : m;
                         const auto* info = sp.lookup(r, canon);
                         ASSERT_NE(info, nullptr);
                         EXPECT_EQ(info->count, 2u) << canon.to_string();
                       });
  });
}

TEST(KmerSpectrum, NaiveAndAggregatedAgree) {
  std::mt19937_64 rng(102);
  std::vector<std::string> reads;
  for (int i = 0; i < 40; ++i) {
    std::string s(80, 'A');
    for (auto& c : s) c = "ACGT"[rng() & 3u];
    reads.push_back(std::move(s));
  }
  const int k = 11;
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  KmerSpectrum agg(rt1.topo(), {k, 16, true});
  KmerSpectrum naive(rt2.topo(), {k, 16, false});
  build_spectrum(rt1, agg, reads);
  build_spectrum(rt2, naive, reads);
  EXPECT_EQ(agg.total_distinct(), naive.total_distinct());
  // Aggregated construction sends far fewer messages.
  EXPECT_LT(rt1.report().total_traffic().remote_msgs() * 5,
            rt2.report().total_traffic().remote_msgs());
}

TEST(ContigBuilder, ReconstructsRepeatFreeGenome) {
  // Error-free reads at depth 8 over a repeat-free genome: the UU graph is
  // a set of simple paths and the contigs must tile the genome.
  const std::string genome = seq::simulate_genome(
      {.length = 20'000, .repeat_fraction = 0.0, .rng_seed = 103});
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 8.0;
  rp.error_rate = 0.0;
  rp.junk_fraction = 0.0;
  rp.n_rate = 0.0;
  rp.rng_seed = 104;
  const auto read_recs = simulate_reads(genome, rp);
  std::vector<std::string> reads;
  for (const auto& r : read_recs) reads.push_back(r.seq);

  const int k = 21;
  Runtime rt(Topology(4, 2));
  KmerSpectrum sp(rt.topo(), {k, 256, true});
  build_spectrum(rt, sp, reads);
  const auto contigs = dbg::build_contigs(sp, 4, {2, 2, 100});

  ASSERT_FALSE(contigs.empty());
  std::size_t covered = 0;
  for (const auto& c : contigs) {
    // Every contig must be a substring of the genome (either strand).
    const bool fwd = genome.find(c) != std::string::npos;
    const bool rev =
        genome.find(seq::reverse_complement(c)) != std::string::npos;
    EXPECT_TRUE(fwd || rev) << "contig of length " << c.size()
                            << " not in genome";
    covered += c.size();
  }
  // Near-complete reconstruction (ends + low-coverage gaps may be lost).
  EXPECT_GT(covered, genome.size() * 85 / 100);
  // And it should come in few, long pieces.
  const auto longest =
      std::max_element(contigs.begin(), contigs.end(),
                       [](const auto& a, const auto& b) {
                         return a.size() < b.size();
                       })
          ->size();
  EXPECT_GT(longest, 1000u);
}

TEST(ContigBuilder, ErrorKmersAreFilteredBySolidity) {
  const std::string genome = seq::simulate_genome(
      {.length = 10'000, .repeat_fraction = 0.0, .rng_seed = 105});
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 10.0;
  rp.error_rate = 0.01;  // errors create low-count k-mers
  rp.junk_fraction = 0.0;
  rp.n_rate = 0.0;
  rp.rng_seed = 106;
  const auto read_recs = simulate_reads(genome, rp);
  std::vector<std::string> reads;
  for (const auto& r : read_recs) reads.push_back(r.seq);

  const int k = 21;
  Runtime rt(Topology(4, 2));
  KmerSpectrum sp(rt.topo(), {k, 256, true});
  build_spectrum(rt, sp, reads);
  // min_count=3 discards error k-mers (seen once or twice).
  const auto contigs = dbg::build_contigs(sp, 4, {3, 3, 200});
  ASSERT_FALSE(contigs.empty());
  std::size_t in_genome = 0;
  for (const auto& c : contigs)
    if (genome.find(c) != std::string::npos ||
        genome.find(seq::reverse_complement(c)) != std::string::npos)
      ++in_genome;
  // The solid-threshold graph stays error-free.
  EXPECT_EQ(in_genome, contigs.size());
}

TEST(ContigBuilder, RepeatBreaksContigs) {
  // An exact repeat longer than k forks the UU graph; contigs must stop at
  // the repeat boundary rather than misassemble across it.
  std::mt19937_64 rng(107);
  auto rand_seq = [&](std::size_t n) {
    std::string s(n, 'A');
    for (auto& c : s) c = "ACGT"[rng() & 3u];
    return s;
  };
  const std::string repeat = rand_seq(200);
  const std::string genome =
      rand_seq(3000) + repeat + rand_seq(3000) + repeat + rand_seq(3000);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 10.0;
  rp.error_rate = 0.0;
  rp.junk_fraction = 0.0;
  rp.rng_seed = 108;
  const auto read_recs = simulate_reads(genome, rp);
  std::vector<std::string> reads;
  for (const auto& r : read_recs) reads.push_back(r.seq);

  const int k = 21;
  Runtime rt(Topology(2, 2));
  KmerSpectrum sp(rt.topo(), {k, 256, true});
  build_spectrum(rt, sp, reads);
  const auto contigs = dbg::build_contigs(sp, 2, {2, 2, 100});
  for (const auto& c : contigs) {
    const bool fwd = genome.find(c) != std::string::npos;
    const bool rev =
        genome.find(seq::reverse_complement(c)) != std::string::npos;
    EXPECT_TRUE(fwd || rev) << "misassembled contig (len " << c.size() << ")";
  }
  // No contig may span a full repeat copy plus both flanks.
  for (const auto& c : contigs)
    EXPECT_LT(c.size(), 3000u + 2 * repeat.size());
}

TEST(KmerSpectrum, RejectsBadOptions) {
  const Topology topo(2, 2);
  EXPECT_THROW(KmerSpectrum(topo, {1, 8, true}), std::invalid_argument);
  EXPECT_THROW(KmerSpectrum(topo, {65, 8, true}), std::invalid_argument);
}

}  // namespace
