#include "align/extension.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "seq/dna.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;
using mera::seq::PackedSeq;

TEST(Extension, PerfectReadExtendsToFullLength) {
  std::mt19937_64 rng(61);
  const std::string g = random_dna(rng, 2000);
  const PackedSeq target(g);
  const std::size_t pos = 700;
  const std::string q = g.substr(pos, 100);
  const auto qc = dna_codes(q);
  const int k = 31;
  // Seed at query offset 40 -> target offset pos+40.
  const auto ext = extend_seed(std::span<const std::uint8_t>(qc), target, 40,
                               pos + 40, k, {});
  EXPECT_EQ(ext.aln.q_begin, 0u);
  EXPECT_EQ(ext.aln.q_end, 100u);
  EXPECT_EQ(ext.aln.t_begin, pos);
  EXPECT_EQ(ext.aln.t_end, pos + 100);
  EXPECT_EQ(ext.aln.score, Scoring{}.match * 100);
}

TEST(Extension, WindowIsClampedAtTargetEdges) {
  std::mt19937_64 rng(62);
  const std::string g = random_dna(rng, 300);
  const PackedSeq target(g);
  const std::string q = g.substr(0, 80);  // read at the very start
  const auto qc = dna_codes(q);
  const auto ext =
      extend_seed(std::span<const std::uint8_t>(qc), target, 10, 10, 21, {});
  EXPECT_EQ(ext.window_begin, 0u);
  EXPECT_EQ(ext.aln.t_begin, 0u);
  EXPECT_EQ(ext.aln.score, Scoring{}.match * 80);
}

TEST(Extension, QueryHangingOffTargetStartIsClipped) {
  std::mt19937_64 rng(63);
  const std::string g = random_dna(rng, 500);
  const PackedSeq target(g);
  // Query's first 20 bases are junk that lies "before" the target.
  const std::string q = random_dna(rng, 20) + g.substr(0, 60);
  const auto qc = dna_codes(q);
  // Seed: query offset 20 matches target offset 0.
  const auto ext =
      extend_seed(std::span<const std::uint8_t>(qc), target, 20, 0, 21, {});
  EXPECT_GE(ext.aln.score, Scoring{}.match * 60);
  EXPECT_EQ(ext.aln.t_begin, 0u);
  EXPECT_EQ(ext.aln.q_begin, 20u);
}

TEST(Extension, ReadWithErrorsStillExtendsAcrossThem) {
  std::mt19937_64 rng(64);
  const std::string g = random_dna(rng, 1000);
  const PackedSeq target(g);
  std::string q = g.substr(400, 100);
  q[10] = mera::seq::complement_base(q[10]);
  q[80] = mera::seq::complement_base(q[80]);
  const auto qc = dna_codes(q);
  // Seed in the clean middle region.
  const auto ext = extend_seed(std::span<const std::uint8_t>(qc), target, 30,
                               430, 31, {});
  const Scoring sc;
  EXPECT_EQ(ext.aln.score, 98 * sc.match + 2 * sc.mismatch);
  EXPECT_EQ(ext.aln.mismatches, 2);
  EXPECT_EQ(ext.aln.t_begin, 400u);
}

TEST(Extension, IndelWithinPadIsRecovered) {
  std::mt19937_64 rng(65);
  const std::string g = random_dna(rng, 1000);
  const PackedSeq target(g);
  std::string q = g.substr(300, 100);
  q.erase(70, 2);  // 2-base deletion vs target
  const auto qc = dna_codes(q);
  const auto ext = extend_seed(std::span<const std::uint8_t>(qc), target, 20,
                               320, 31, {});
  EXPECT_EQ(ext.aln.gap_columns, 2);
  EXPECT_EQ(ext.aln.q_end - ext.aln.q_begin, q.size());
}

TEST(Extension, BandedModeAgreesOnCleanReads) {
  std::mt19937_64 rng(66);
  const std::string g = random_dna(rng, 3000);
  const PackedSeq target(g);
  ExtensionConfig banded;
  banded.kernel = SwKernel::kBanded;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t pos = rng() % 2800;
    std::string q = g.substr(pos, 90);
    if (trial % 2) q[rng() % 90] = "ACGT"[rng() & 3u];
    const auto qc = dna_codes(q);
    const std::size_t q_off = 20;
    const auto full = extend_seed(std::span<const std::uint8_t>(qc), target,
                                  q_off, pos + q_off, 31, {});
    const auto band = extend_seed(std::span<const std::uint8_t>(qc), target,
                                  q_off, pos + q_off, 31, banded);
    EXPECT_EQ(band.aln.score, full.aln.score) << "trial " << trial;
  }
}

TEST(Extension, DegenerateInputsAreSafe) {
  const PackedSeq target{std::string_view("ACGTACGT")};
  const std::vector<std::uint8_t> empty;
  const auto ext = extend_seed(std::span<const std::uint8_t>(empty), target,
                               0, 0, 4, {});
  EXPECT_TRUE(ext.aln.empty());
}

}  // namespace
