#include "seq/dna.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace {

using namespace mera::seq;

TEST(Dna, EncodeDecodeRoundTrip) {
  const std::string bases = "ACGT";
  for (char c : bases) {
    const auto code = encode_base(c);
    ASSERT_LT(code, 4);
    EXPECT_EQ(decode_base(code), c);
  }
}

TEST(Dna, EncodeIsCaseInsensitive) {
  EXPECT_EQ(encode_base('a'), encode_base('A'));
  EXPECT_EQ(encode_base('c'), encode_base('C'));
  EXPECT_EQ(encode_base('g'), encode_base('G'));
  EXPECT_EQ(encode_base('t'), encode_base('T'));
}

TEST(Dna, InvalidBasesEncodeToSentinel) {
  for (char c : std::string("NnXU*- 1")) EXPECT_EQ(encode_base(c), kInvalidBase);
  EXPECT_EQ(decode_base(kInvalidBase), 'N');
}

TEST(Dna, ComplementPairs) {
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('T'), 'A');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('G'), 'C');
  EXPECT_EQ(complement_base('N'), 'N');
}

TEST(Dna, ComplementCodeIsInvolution) {
  for (std::uint8_t c = 0; c < 4; ++c)
    EXPECT_EQ(complement_code(complement_code(c)), c);
  EXPECT_EQ(complement_code(kInvalidBase), kInvalidBase);
}

TEST(Dna, IsValidDna) {
  EXPECT_TRUE(is_valid_dna(""));
  EXPECT_TRUE(is_valid_dna("ACGTacgt"));
  EXPECT_FALSE(is_valid_dna("ACGTN"));
  EXPECT_FALSE(is_valid_dna("hello"));
}

TEST(Dna, ReverseComplementKnown) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(Dna, ReverseComplementIsInvolutionOnRandomStrings) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::string s(1 + rng() % 300, 'A');
    for (auto& c : s) c = decode_base(static_cast<std::uint8_t>(rng() & 3u));
    EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
  }
}

TEST(Dna, ReverseComplementPreservesN) {
  EXPECT_EQ(reverse_complement("ANT"), "ANT");
  EXPECT_EQ(reverse_complement("NAC"), "GTN");
}

}  // namespace
