// The executor subsystem: exec::ThreadPool (persistent workers, FIFO queue,
// drain-on-destroy) and exec::TaskGroup (fork/join with deterministic
// exception propagation). These primitives carry the parallel-shard and
// batch-prefetch paths, so their edge semantics — shutdown, exceptions,
// reuse — get pinned here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_group.hpp"
#include "exec/thread_pool.hpp"

namespace {

using mera::exec::TaskGroup;
using mera::exec::ThreadPool;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskAcrossWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i)
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ClampsWorkerCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.size(), 1);
}

TEST(ThreadPool, DestructorDrainsEverySubmittedTask) {
  // Shutdown must complete queued work, not drop it: queue far more tasks
  // than workers, destroy the pool immediately, and expect every task ran.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 128; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(ran.load(), 128);
}

TEST(ThreadPool, SubmitAfterStopThrowsInsteadOfDroppingTheTask) {
  // Regression: a submit() racing shutdown could enqueue a task after every
  // worker had already observed stop-with-empty-queue and exited — silently
  // dropped, violating the drain guarantee. Post-stop submission is now an
  // error the caller can see.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.request_stop();
  EXPECT_THROW(pool.submit([&ran] { ran.fetch_add(1); }), std::logic_error);
  // request_stop is idempotent, and pre-stop tasks still drain.
  pool.request_stop();
}

TEST(ThreadPool, PreStopTasksStillDrainAfterRequestStop) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.request_stop();
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, TasksActuallyRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> seen;
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i)
    group.run([&] {
      const std::scoped_lock lk(mu);
      seen.insert(std::this_thread::get_id());
    });
  group.wait();
  EXPECT_EQ(seen.count(std::this_thread::get_id()), 0u);
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPool, DefaultParallelismRespectsWidthRanksAndHardware) {
  const auto hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  // Never wider than the work, never below 1, never beyond hw/nranks.
  EXPECT_EQ(ThreadPool::default_parallelism(1, 1), 1);
  EXPECT_LE(ThreadPool::default_parallelism(8, 1), std::max(1, hw));
  EXPECT_EQ(ThreadPool::default_parallelism(8, 2 * hw), 1);  // oversubscribed
  EXPECT_GE(ThreadPool::default_parallelism(4, 4), 1);
  // Degenerate inputs are clamped, not UB.
  EXPECT_EQ(ThreadPool::default_parallelism(0, 0), 1);
  EXPECT_EQ(ThreadPool::default_parallelism(-2, -2), 1);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskGroup, WaitJoinsAllForkedTasks) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i)
    group.run([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  EXPECT_EQ(group.forked(), 10u);
  group.wait();
  EXPECT_EQ(done.load(), 10);  // wait() returned only after every task
  EXPECT_EQ(group.forked(), 0u);
}

TEST(TaskGroup, RethrowsTheEarliestForkedException) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  // Several tasks fail in scrambled real-time order; the EARLIEST-forked
  // failure must win deterministically, independent of scheduling.
  group.run([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  group.run([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    throw std::runtime_error("fork-1");
  });
  group.run([] { throw std::logic_error("fork-2"); });  // fails first in time
  try {
    group.wait();
    FAIL() << "wait() did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fork-1");
  }
}

TEST(TaskGroup, SurvivingTasksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.run([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) group.run([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the failure cancelled nothing
}

TEST(TaskGroup, IsReusableAfterWaitIncludingAfterAnException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("round 1"); });
  EXPECT_THROW(group.wait(), std::runtime_error);

  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) group.run([&ran] { ran.fetch_add(1); });
  group.wait();  // the old exception is gone; a clean round stays clean
  EXPECT_EQ(ran.load(), 4);
}

TEST(TaskGroup, DestructorJoinsWithoutRethrowing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    group.run([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1);
    });
    group.run([] { throw std::runtime_error("unobserved"); });
    // No wait(): destruction must join and swallow, not terminate.
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroup, ManyMoreTasksThanWorkersAllComplete) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) group.run([&sum, i] { sum.fetch_add(i); });
  group.wait();
  EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
